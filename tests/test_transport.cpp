// Transport-contract conformance suite, parametrized over backends.
//
// Every backend must satisfy the six-op contract of clique/transport.hpp:
// staged_snapshot in canonical (src asc, dst asc) order without consuming,
// generation bumps on deliver() AND discard_staged(), DeliverySummary with
// the canonical demand list and exact per-node volumes, and FIFO inboxes.
// Covered backends:
//   * ArenaTransport (the in-process reference),
//   * SocketTransport at P=1 (a mesh with no peers — must degenerate to
//     the arena behaviour exactly),
//   * SocketTransport at P=2 inside one process: two ranks connected by a
//     socketpair(), each driven on its own thread. This pins the
//     distributed claims — identical DeliverySummary on every rank, owned
//     inboxes filled across the rank boundary, and the uncharged allgather
//     side channel.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "clique/socket_transport.hpp"
#include "clique/transport.hpp"

namespace cca::clique {
namespace {

std::vector<Word> to_vector(std::span<const Word> s) {
  return {s.begin(), s.end()};
}

// ---------------------------------------------------------------------------
// Single-process backends (full ownership): Arena and Socket P=1.
// ---------------------------------------------------------------------------

struct BackendCase {
  std::string name;
  std::function<std::unique_ptr<Transport>(int)> make;
};

std::shared_ptr<SocketMesh> lone_mesh() {
  return std::make_shared<SocketMesh>(0, 1, std::vector<int>{-1});
}

class TransportConformance : public ::testing::TestWithParam<BackendCase> {};

INSTANTIATE_TEST_SUITE_P(
    Backends, TransportConformance,
    ::testing::Values(
        BackendCase{"arena",
                    [](int n) { return std::make_unique<ArenaTransport>(n); }},
        BackendCase{"socket_p1",
                    [](int n) {
                      return std::make_unique<SocketTransport>(n, lone_mesh());
                    }}),
    [](const auto& info) { return info.param.name; });

TEST_P(TransportConformance, OwnsFullSpanSingleProcess) {
  const auto t = GetParam().make(5);
  EXPECT_EQ(t->owned().begin, 0);
  EXPECT_EQ(t->owned().end, 5);
  EXPECT_TRUE(t->owned().full(5));
}

TEST_P(TransportConformance, StagedSnapshotCanonicalOrderWithoutConsuming) {
  const auto t = GetParam().make(4);
  // Stage deliberately out of canonical order, mixing all three staging ops.
  t->send(2, 0, 20);
  t->send_words(0, 3, std::vector<Word>{3, 4});
  auto span = t->stage(0, 1, 2);
  span[0] = 1;
  span[1] = 2;
  t->send(2, 0, 21);  // appends to the existing (2, 0) run

  const auto snap = t->staged_snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].src, 0);
  EXPECT_EQ(snap[0].dst, 1);
  EXPECT_EQ(snap[0].words, (std::vector<Word>{1, 2}));
  EXPECT_EQ(snap[1].src, 0);
  EXPECT_EQ(snap[1].dst, 3);
  EXPECT_EQ(snap[1].words, (std::vector<Word>{3, 4}));
  EXPECT_EQ(snap[2].src, 2);
  EXPECT_EQ(snap[2].dst, 0);
  EXPECT_EQ(snap[2].words, (std::vector<Word>{20, 21}));

  // The snapshot must not consume: delivery still moves everything.
  const auto sum = t->deliver();
  EXPECT_EQ(sum.total_words, 6);
  EXPECT_EQ(to_vector(t->inbox(0, 2)), (std::vector<Word>{20, 21}));
}

TEST_P(TransportConformance, DeliverySummaryCanonicalDemandsAndVolumes) {
  const auto t = GetParam().make(4);
  t->send(3, 1, 7);
  t->send(1, 2, 8);
  t->send(1, 0, 9);
  t->send(3, 1, 10);

  const auto sum = t->deliver();
  const std::vector<Demand> want{{1, 0, 1}, {1, 2, 1}, {3, 1, 2}};
  EXPECT_EQ(sum.demands, want);
  EXPECT_EQ(sum.total_words, 4);
  EXPECT_EQ(sum.sent_by, (std::vector<std::int64_t>{0, 2, 0, 2}));
  EXPECT_EQ(sum.recv_by, (std::vector<std::int64_t>{1, 2, 1, 0}));
}

TEST_P(TransportConformance, GenerationsBumpOnDeliver) {
  const auto t = GetParam().make(3);
  const auto stage0 = t->stage_generation(0);
  const auto inbox0 = t->inbox_generation();
  t->send(0, 1, 1);
  (void)t->deliver();
  EXPECT_GT(t->stage_generation(0), stage0);
  EXPECT_GT(t->inbox_generation(), inbox0);
}

TEST_P(TransportConformance, GenerationsBumpOnDiscard) {
  const auto t = GetParam().make(3);
  t->send(0, 1, 1);
  t->send(2, 1, 2);
  const auto stage0 = t->stage_generation(0);
  const auto stage2 = t->stage_generation(2);
  t->discard_staged();
  EXPECT_GT(t->stage_generation(0), stage0);
  EXPECT_GT(t->stage_generation(2), stage2);
  // Nothing moves after a discard.
  const auto sum = t->deliver();
  EXPECT_TRUE(sum.demands.empty());
  EXPECT_EQ(sum.total_words, 0);
  EXPECT_TRUE(t->inbox(1, 0).empty());
}

TEST_P(TransportConformance, TakeInboxConsumesThePair) {
  const auto t = GetParam().make(3);
  t->send(0, 2, 5);
  t->send(0, 2, 6);
  (void)t->deliver();
  EXPECT_EQ(t->take_inbox(2, 0), (std::vector<Word>{5, 6}));
  EXPECT_TRUE(t->inbox(2, 0).empty());
}

// ---------------------------------------------------------------------------
// Two ranks in one process over a socketpair, one thread per rank.
// ---------------------------------------------------------------------------

/// Build the P=2 meshes from one socketpair (each side adopted by a rank).
std::pair<std::shared_ptr<SocketMesh>, std::shared_ptr<SocketMesh>>
paired_meshes() {
  int sv[2];
  EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  auto m0 = std::make_shared<SocketMesh>(0, 2, std::vector<int>{-1, sv[0]});
  auto m1 = std::make_shared<SocketMesh>(1, 2, std::vector<int>{sv[1], -1});
  return {std::move(m0), std::move(m1)};
}

/// Run one SPMD body per rank concurrently (deliver() blocks on the peer).
void run_ranks(const std::function<void(int)>& body) {
  std::thread t1([&] { body(1); });
  body(0);
  t1.join();
}

TEST(SocketTransportP2, OwnedShardsPartitionTheClique) {
  auto [m0, m1] = paired_meshes();
  SocketTransport t0(5, m0), t1(5, m1);
  EXPECT_EQ(t0.owned(), (NodeSpan{0, 2}));
  EXPECT_EQ(t1.owned(), (NodeSpan{2, 5}));
  EXPECT_EQ(t0.owned(), shard_span(5, 2, 0));
  EXPECT_EQ(t1.owned(), shard_span(5, 2, 1));
}

TEST(SocketTransportP2, DeliverMovesWordsAcrossRanksWithIdenticalSummary) {
  auto [m0, m1] = paired_meshes();
  SocketTransport t0(4, m0), t1(4, m1);  // rank 0 owns {0,1}, rank 1 {2,3}
  Transport* ts[2] = {&t0, &t1};
  DeliverySummary sums[2];

  run_ranks([&](int r) {
    Transport& t = *ts[r];
    if (r == 0) {
      t.send(0, 2, 100);  // crosses to rank 1
      t.send(1, 0, 7);    // stays on rank 0
      t.send_words(0, 3, std::vector<Word>{8, 9});
    } else {
      auto span = t.stage(2, 1, 3);  // crosses to rank 0
      span[0] = 40;
      span[1] = 41;
      span[2] = 42;
      t.send(3, 2, 55);  // stays on rank 1
    }
    sums[r] = t.deliver();
  });

  // Both ranks reconstruct the identical canonical summary.
  const std::vector<Demand> want{
      {0, 2, 1}, {0, 3, 2}, {1, 0, 1}, {2, 1, 3}, {3, 2, 1}};
  for (int r = 0; r < 2; ++r) {
    EXPECT_EQ(sums[r].demands, want) << "rank " << r;
    EXPECT_EQ(sums[r].total_words, 8) << "rank " << r;
    EXPECT_EQ(sums[r].sent_by, (std::vector<std::int64_t>{3, 1, 3, 1}));
    EXPECT_EQ(sums[r].recv_by, (std::vector<std::int64_t>{1, 3, 2, 2}));
  }

  // Owned destinations' inboxes hold the payloads, local and remote alike.
  EXPECT_EQ(to_vector(t0.inbox(0, 1)), (std::vector<Word>{7}));
  EXPECT_EQ(to_vector(t0.inbox(1, 2)), (std::vector<Word>{40, 41, 42}));
  EXPECT_EQ(to_vector(t1.inbox(2, 0)), (std::vector<Word>{100}));
  EXPECT_EQ(to_vector(t1.inbox(3, 0)), (std::vector<Word>{8, 9}));
  EXPECT_EQ(to_vector(t1.inbox(2, 3)), (std::vector<Word>{55}));
}

TEST(SocketTransportP2, RepeatedSuperstepsBumpGenerationsInLockstep) {
  auto [m0, m1] = paired_meshes();
  SocketTransport t0(4, m0), t1(4, m1);
  Transport* ts[2] = {&t0, &t1};

  const auto inbox0 = t0.inbox_generation();
  run_ranks([&](int r) {
    Transport& t = *ts[r];
    for (int step = 0; step < 3; ++step) {
      const NodeSpan own = t.owned();
      for (NodeId src = own.begin; src < own.end; ++src)
        t.send(src, (src + 1) % 4, static_cast<Word>(10 * step + src));
      (void)t.deliver();
    }
  });
  EXPECT_EQ(t0.inbox_generation(), inbox0 + 3);
  // Last superstep's words (step == 2) are what the inboxes hold now.
  EXPECT_EQ(to_vector(t0.inbox(0, 3)), (std::vector<Word>{23}));
  EXPECT_EQ(to_vector(t1.inbox(2, 1)), (std::vector<Word>{21}));
}

TEST(SocketTransportP2, AllgatherBlocksFillsNonOwnedSlots) {
  auto [m0, m1] = paired_meshes();
  SocketTransport t0(4, m0), t1(4, m1);
  Transport* ts[2] = {&t0, &t1};

  // One word per node: offsets[v] = v (the broadcast_all sync layout).
  const std::vector<std::size_t> offsets{0, 1, 2, 3, 4};
  std::vector<Word> data[2] = {{0, 0, 0, 0}, {0, 0, 0, 0}};
  run_ranks([&](int r) {
    Transport& t = *ts[r];
    const NodeSpan own = t.owned();
    for (NodeId v = own.begin; v < own.end; ++v)
      data[r][static_cast<std::size_t>(v)] = static_cast<Word>(100 + v);
    t.allgather_blocks(data[r], offsets);
  });
  for (int r = 0; r < 2; ++r)
    EXPECT_EQ(data[r], (std::vector<Word>{100, 101, 102, 103})) << "rank " << r;
}

TEST(SocketTransportP2, DiscardIsLocalAndKeepsRanksConsistent) {
  auto [m0, m1] = paired_meshes();
  SocketTransport t0(4, m0), t1(4, m1);
  Transport* ts[2] = {&t0, &t1};
  DeliverySummary sums[2];

  run_ranks([&](int r) {
    Transport& t = *ts[r];
    if (r == 0) {
      // Rank 0 stages a doomed superstep and unwinds it locally...
      t.send(0, 3, 999);
      t.discard_staged();
    }
    // ...then both ranks run a clean superstep.
    const NodeSpan own = t.owned();
    t.send(own.begin, (own.begin + 2) % 4, static_cast<Word>(own.begin));
    sums[r] = t.deliver();
  });

  const std::vector<Demand> want{{0, 2, 1}, {2, 0, 1}};
  EXPECT_EQ(sums[0].demands, want);
  EXPECT_EQ(sums[1].demands, want);
  EXPECT_EQ(to_vector(t1.inbox(2, 0)), (std::vector<Word>{0}));
  EXPECT_EQ(to_vector(t0.inbox(0, 2)), (std::vector<Word>{2}));
}

}  // namespace
}  // namespace cca::clique
