// Tests for the graph substrate: container semantics, generators with known
// structure, and cross-checks among the independent reference algorithms.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/reference.hpp"
#include "matrix/ops.hpp"
#include "matrix/semiring.hpp"

namespace cca {
namespace {

constexpr std::int64_t kInf = MinPlusSemiring::kInf;

TEST(GraphContainer, UndirectedEdgesAreSymmetric) {
  auto g = Graph::undirected(4);
  g.add_edge(0, 2, 5);
  EXPECT_TRUE(g.has_arc(0, 2));
  EXPECT_TRUE(g.has_arc(2, 0));
  EXPECT_EQ(g.arc_weight(2, 0), 5);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.out_degree(0), 1);
}

TEST(GraphContainer, DirectedArcsAreOneWay) {
  auto g = Graph::directed(3);
  g.add_edge(0, 1);
  EXPECT_TRUE(g.has_arc(0, 1));
  EXPECT_FALSE(g.has_arc(1, 0));
  EXPECT_EQ(g.in_degree(1), 1);
  EXPECT_EQ(g.out_degree(1), 0);
}

TEST(GraphContainer, ReWeightingDoesNotDuplicate) {
  auto g = Graph::undirected(3);
  g.add_edge(0, 1, 2);
  g.add_edge(0, 1, 9);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.arc_weight(0, 1), 9);
  EXPECT_EQ(g.out_degree(0), 1);
}

TEST(GraphContainer, MatricesReflectStructure) {
  auto g = Graph::directed(3);
  g.add_edge(0, 1, 7);
  const auto a = g.adjacency();
  EXPECT_EQ(a(0, 1), 1);
  EXPECT_EQ(a(1, 0), 0);
  const auto w = g.weight_matrix();
  EXPECT_EQ(w(0, 1), 7);
  EXPECT_EQ(w(1, 1), 0);
  EXPECT_EQ(w(2, 0), kInf);
}

TEST(Generators, GnpDeterministicAndSimple) {
  const auto g1 = gnp_random_graph(30, 0.3, 11);
  const auto g2 = gnp_random_graph(30, 0.3, 11);
  EXPECT_EQ(g1.num_edges(), g2.num_edges());
  for (int v = 0; v < 30; ++v) EXPECT_FALSE(g1.has_arc(v, v));
}

TEST(Generators, GnpDensityRoughlyMatchesP) {
  const auto g = gnp_random_graph(100, 0.25, 5);
  const double expected = 0.25 * 100 * 99 / 2;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, expected * 0.2);
}

TEST(Generators, StructuredGirths) {
  EXPECT_EQ(ref_girth(cycle_graph(7)), 7);
  EXPECT_EQ(ref_girth(complete_graph(5)), 3);
  EXPECT_EQ(ref_girth(complete_bipartite(3, 4)), 4);
  EXPECT_EQ(ref_girth(petersen_graph()), 5);
  EXPECT_EQ(ref_girth(grid_graph(3, 4)), 4);
  EXPECT_EQ(ref_girth(binary_tree(15)), kInf);
  EXPECT_EQ(ref_girth(path_graph(6)), kInf);
  EXPECT_EQ(ref_girth(cycle_graph(9, /*directed=*/true)), 9);
}

TEST(Generators, PlantedCycleContainsKCycle) {
  for (const int k : {3, 4, 5, 6}) {
    const auto g = planted_cycle_graph(24, k, 0.0, 77 + static_cast<std::uint64_t>(k));
    EXPECT_TRUE(ref_has_k_cycle(g, k)) << "k=" << k;
  }
}

TEST(Generators, BipartiteHasNoOddCycles) {
  const auto g = random_bipartite_graph(12, 0.4, 3);
  EXPECT_FALSE(ref_has_k_cycle(g, 3));
  EXPECT_FALSE(ref_has_k_cycle(g, 5));
}

TEST(Generators, DagIsAcyclic) {
  const auto g = random_weighted_dag(20, 0.3, -5, 10, 9);
  EXPECT_EQ(ref_girth(g), kInf);
}

// ---------------------------------------------------------------------------
// Reference algorithm cross-checks (independent methods must agree).
// ---------------------------------------------------------------------------

TEST(References, ApspMatchesBfsOnUnweighted) {
  const auto g = gnp_random_graph(24, 0.15, 21);
  EXPECT_EQ(ref_apsp(g), ref_bfs_apsp(g));
}

TEST(References, ApspHandlesNegativeWeightsOnDag) {
  const auto g = random_weighted_dag(12, 0.4, -4, 9, 31);
  const auto d = ref_apsp(g);
  for (int v = 0; v < 12; ++v) EXPECT_EQ(d(v, v), 0);
  // Distances can be negative but must respect the triangle inequality.
  for (int a = 0; a < 12; ++a)
    for (int b = 0; b < 12; ++b)
      for (int c = 0; c < 12; ++c)
        if (d(a, b) < kInf && d(b, c) < kInf) {
          EXPECT_LE(d(a, c), d(a, b) + d(b, c));
        }
}

TEST(References, TriangleCountMatchesTraceFormula) {
  // Independent check of Corollary 2's undirected formula tr(A^3)/6.
  const IntRing ring;
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto g = gnp_random_graph(20, 0.3, seed);
    const auto a = g.adjacency();
    const auto a3 = multiply(ring, multiply(ring, a, a), a);
    EXPECT_EQ(ref_count_triangles(g), trace(ring, a3) / 6) << seed;
  }
}

TEST(References, DirectedTriangleCountMatchesTraceFormula) {
  const IntRing ring;
  for (const std::uint64_t seed : {4u, 5u}) {
    const auto g = gnp_random_graph(18, 0.25, seed, /*directed=*/true);
    const auto a = g.adjacency();
    const auto a3 = multiply(ring, multiply(ring, a, a), a);
    EXPECT_EQ(ref_count_triangles(g), trace(ring, a3) / 3) << seed;
  }
}

TEST(References, FourCycleCountMatchesTraceFormula) {
  // Undirected: #C4 = (tr(A^4) - sum(2 deg^2 - deg)) / 8.
  const IntRing ring;
  for (const std::uint64_t seed : {6u, 7u}) {
    const auto g = gnp_random_graph(16, 0.35, seed);
    const auto a = g.adjacency();
    const auto a2 = multiply(ring, a, a);
    const auto tr = trace(ring, multiply(ring, a2, a2));
    std::int64_t corr = 0;
    for (int v = 0; v < 16; ++v) {
      const std::int64_t d = g.out_degree(v);
      corr += 2 * d * d - d;
    }
    EXPECT_EQ(ref_count_4cycles(g), (tr - corr) / 8) << seed;
  }
}

TEST(References, DirectedFourCycleCountMatchesTraceFormula) {
  const IntRing ring;
  for (const std::uint64_t seed : {8u, 9u}) {
    const auto g = gnp_random_graph(14, 0.3, seed, /*directed=*/true);
    const auto a = g.adjacency();
    const auto a2 = multiply(ring, a, a);
    const auto tr = trace(ring, multiply(ring, a2, a2));
    std::int64_t corr = 0;
    for (int v = 0; v < 14; ++v) {
      std::int64_t delta = 0;
      for (const auto& [u, w] : g.out_arcs(v)) {
        (void)w;
        if (g.has_arc(u, v)) ++delta;
      }
      corr += 2 * delta * delta - delta;
    }
    EXPECT_EQ(ref_count_4cycles(g), (tr - corr) / 4) << seed;
  }
}

TEST(References, KnownCountsOnStructuredGraphs) {
  EXPECT_EQ(ref_count_triangles(complete_graph(5)), 10);   // C(5,3)
  EXPECT_EQ(ref_count_4cycles(complete_graph(5)), 15);     // 3 C(5,4)
  EXPECT_EQ(ref_count_4cycles(complete_bipartite(3, 3)), 9);
  EXPECT_EQ(ref_count_triangles(petersen_graph()), 0);
  EXPECT_EQ(ref_count_4cycles(petersen_graph()), 0);
  EXPECT_EQ(ref_count_4cycles(cycle_graph(4)), 1);
  // Directed 4-cycle both ways around a 2-coloured square.
  auto dir = Graph::directed(4);
  dir.add_edge(0, 1);
  dir.add_edge(1, 2);
  dir.add_edge(2, 3);
  dir.add_edge(3, 0);
  EXPECT_EQ(ref_count_4cycles(dir), 1);
  EXPECT_EQ(ref_count_triangles(cycle_graph(3, true)), 1);
}

TEST(References, HasKCycleAgreesWithGirth) {
  for (const std::uint64_t seed : {10u, 11u, 12u}) {
    const auto g = gnp_random_graph(16, 0.12, seed);
    const auto girth = ref_girth(g);
    if (girth < kInf) {
      EXPECT_TRUE(ref_has_k_cycle(g, static_cast<int>(girth)));
      for (int k = 3; k < girth; ++k) EXPECT_FALSE(ref_has_k_cycle(g, k));
    } else {
      for (int k = 3; k <= 6; ++k) EXPECT_FALSE(ref_has_k_cycle(g, k));
    }
  }
}

TEST(References, DirectedGirthSmallCases) {
  auto two = Graph::directed(4);
  two.add_edge(0, 1);
  two.add_edge(1, 0);
  EXPECT_EQ(ref_girth(two), 2);
  EXPECT_EQ(ref_girth(cycle_graph(5, true)), 5);
}

TEST(References, WeightedDiameter) {
  auto g = Graph::undirected(3);
  g.add_edge(0, 1, 4);
  g.add_edge(1, 2, 5);
  EXPECT_EQ(ref_weighted_diameter(g), 9);
}

}  // namespace
}  // namespace cca
