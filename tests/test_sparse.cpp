// The sparse multiplication subsystem: SparseCodec round-trips, the
// balanced triple-partition structure, sparse-vs-dense engine equivalence
// across every semiring, the planner/executor round agreement that
// MmKind::Auto's dispatch rests on, and the Auto engine itself.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <tuple>
#include <vector>

#include "clique/network.hpp"
#include "core/apsp.hpp"
#include "core/counting.hpp"
#include "core/distance_product.hpp"
#include "core/engine.hpp"
#include "core/girth.hpp"
#include "core/mm.hpp"
#include "graph/generators.hpp"
#include "graph/reference.hpp"
#include "matrix/codec.hpp"
#include "matrix/ops.hpp"
#include "matrix/poly.hpp"
#include "matrix/semiring.hpp"
#include "util/rng.hpp"

namespace cca {
namespace {

using core::MmKind;

// ---------------------------------------------------------------------------
// SparseCodec.
// ---------------------------------------------------------------------------

template <typename VC>
void roundtrip(const VC& values, const std::vector<std::uint32_t>& idx,
               const std::vector<typename VC::Value>& vals) {
  const SparseCodec<VC> c{values};
  ASSERT_EQ(idx.size(), vals.size());
  std::vector<EncodedWord> buf(c.words_for(idx.size()), 0xfefefefe);
  c.encode_into(idx, vals, buf.data());
  std::vector<std::uint32_t> idx2(idx.size(), 999);
  std::vector<typename VC::Value> vals2(vals.size());
  c.decode_into(buf.data(), idx.size(), idx2.data(), vals2.data());
  EXPECT_EQ(idx2, idx);
  EXPECT_EQ(vals2, vals);
}

TEST(SparseCodec, I64RoundTripIncludingEmptyAndDense) {
  const I64Codec vc;
  roundtrip(vc, {}, {});  // empty row
  roundtrip(vc, {7}, {std::int64_t{-5}});
  roundtrip(vc, {0, 3, 4}, {std::int64_t{1}, std::int64_t{1} << 60,
                            MinPlusSemiring::kInf});
  // All-dense row: every index present.
  std::vector<std::uint32_t> idx;
  std::vector<std::int64_t> vals;
  Rng rng(5);
  for (std::uint32_t j = 0; j < 129; ++j) {
    idx.push_back(j);
    vals.push_back(rng.next_in(-1000, 1000));
  }
  roundtrip(vc, idx, vals);
}

TEST(SparseCodec, WidthIsIndexWordsPlusValueBlock) {
  const SparseCodec<I64Codec> c;
  // Two 32-bit indices per word: odd counts leave a half word.
  EXPECT_EQ(c.words_for(0), 0u);
  EXPECT_EQ(c.words_for(1), 1u + 1u);
  EXPECT_EQ(c.words_for(2), 1u + 2u);
  EXPECT_EQ(c.words_for(3), 2u + 3u);
  // PackedBool values keep the 64-entries-per-word packing, and words_for
  // stays exact at non-64-multiple counts (the PR 3 non-additivity pin).
  const SparseCodec<PackedBoolCodec> b;
  EXPECT_EQ(b.words_for(63), 32u + 1u);
  EXPECT_EQ(b.words_for(64), 32u + 1u);
  EXPECT_EQ(b.words_for(65), 33u + 2u);
  EXPECT_NE(b.words_for(33) + b.words_for(33), b.words_for(66));
}

TEST(SparseCodec, PackedBoolRoundTripAtNonWordMultiples) {
  const PackedBoolCodec vc;
  Rng rng(11);
  for (const std::size_t cnt : {1u, 63u, 64u, 65u, 130u}) {
    std::vector<std::uint32_t> idx;
    std::vector<std::uint8_t> vals;
    for (std::size_t x = 0; x < cnt; ++x) {
      idx.push_back(static_cast<std::uint32_t>(3 * x + 1));
      vals.push_back(rng.chance(1, 2) ? 1 : 0);
    }
    roundtrip(vc, idx, vals);
  }
}

TEST(SparseCodec, TwoBlockLayoutDecodesAtExplicitOffsets) {
  // Two blocks packed back to back in one message, second decoded at the
  // first's exact word offset — the layout the distribute phase ships.
  const SparseCodec<I64Codec> c;
  const std::vector<std::uint32_t> ia{4, 9};
  const std::vector<std::int64_t> va{-1, 17};
  const std::vector<std::uint32_t> ib{0, 2, 5};
  const std::vector<std::int64_t> vb{3, -3, 30};
  std::vector<EncodedWord> buf(c.words_for(2) + c.words_for(3), 0);
  c.encode_into(ia, va, buf.data());
  c.encode_into(ib, vb, buf.data() + c.words_for(2));
  std::vector<std::uint32_t> idx(3);
  std::vector<std::int64_t> vals(3);
  c.decode_into(buf.data() + c.words_for(2), 3, idx.data(), vals.data());
  EXPECT_EQ(idx, ib);
  EXPECT_EQ(vals, vb);
  c.decode_into(buf.data(), 2, idx.data(), vals.data());
  EXPECT_EQ(idx[1], 9u);
  EXPECT_EQ(vals[1], 17);
}

// ---------------------------------------------------------------------------
// Structure / planner.
// ---------------------------------------------------------------------------

core::SparsePattern pattern_of(const Matrix<std::int64_t>& m) {
  return core::sparse_pattern(IntRing{}, m);
}

Matrix<std::int64_t> random_sparse_matrix(int n, std::int64_t nnz,
                                          std::uint64_t seed,
                                          std::int64_t lo = 1,
                                          std::int64_t hi = 100) {
  Rng rng(seed);
  Matrix<std::int64_t> m(n, n, 0);
  std::int64_t placed = 0;
  while (placed < nnz) {
    const int i = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    const int j = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (m(i, j) != 0) continue;
    std::int64_t v = 0;
    while (v == 0) v = rng.next_in(lo, hi);
    m(i, j) = v;
    ++placed;
  }
  return m;
}

TEST(SparseStructure, ChunkBoundsPartitionExactly) {
  for (int cnt = 1; cnt <= 17; ++cnt)
    for (int g = 1; g <= cnt; ++g) {
      int covered = 0;
      int prev_end = 0;
      for (int r = 0; r < g; ++r) {
        const auto [lo, hi] = core::sparse_chunk_bounds(cnt, g, r);
        EXPECT_EQ(lo, prev_end);
        EXPECT_GT(hi, lo);  // g <= cnt: no empty chunk
        covered += hi - lo;
        prev_end = hi;
      }
      EXPECT_EQ(covered, cnt);
    }
}

TEST(SparseStructure, TripleCountMatchesDefinition) {
  const auto a = random_sparse_matrix(20, 60, 1);
  const auto b = random_sparse_matrix(20, 45, 2);
  const auto pa = pattern_of(a);
  const auto pb = pattern_of(b);
  std::int64_t want = 0;
  for (int k = 0; k < 20; ++k) {
    std::int64_t col = 0;
    for (int i = 0; i < 20; ++i) col += a(i, k) != 0 ? 1 : 0;
    want += col * static_cast<std::int64_t>(pb[static_cast<std::size_t>(k)].size());
  }
  EXPECT_EQ(core::sparse_triple_count(20, pa, pb), want);
}

TEST(SparseStructure, WorkerGroupsCoverTriplesAndStayDistinct) {
  const int n = 24;
  const auto a = random_sparse_matrix(n, 140, 3);
  const auto b = random_sparse_matrix(n, 120, 4);
  const I64Codec codec;
  const auto st = core::build_sparse_mm_structure(
      n, pattern_of(a), pattern_of(b),
      [&](std::size_t c) { return codec.words_for(c); });
  ASSERT_FALSE(st.trivial);
  std::int64_t groups = 0;
  for (int k = 0; k < n; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    groups += st.group_size[ks];
    EXPECT_EQ(st.extras[ks].size(),
              static_cast<std::size_t>(std::max(0, st.group_size[ks] - 1)));
    // Extras are distinct and never the holder itself.
    auto ex = st.extras[ks];
    std::sort(ex.begin(), ex.end());
    EXPECT_TRUE(std::adjacent_find(ex.begin(), ex.end()) == ex.end());
    for (const int w : ex) EXPECT_NE(w, k);
  }
  // sum g_k <= 2n: at most one extra worker of slack per intermediate.
  EXPECT_LE(groups, 2 * n);
}

// The planner's demand lists are exactly what the executor stages: planned
// rounds == measured rounds, and the planning pre-warms the schedule cache
// so the staged run's supersteps are all cache hits.
TEST(SparsePlanner, PlannedRoundsMatchMeasuredRun) {
  const int n = 27;
  const auto a = random_sparse_matrix(n, 90, 5);
  const auto b = random_sparse_matrix(n, 110, 6);
  const I64Codec codec;
  const auto st = core::build_sparse_mm_structure(
      n, pattern_of(a), pattern_of(b),
      [&](std::size_t c) { return codec.words_for(c); });
  clique::Network net(n);
  const auto planned = 2 + net.prepare_schedule(st.gather) +
                       net.prepare_schedule(st.distribute) +
                       net.prepare_schedule(st.contribute);
  (void)core::mm_semiring_sparse(net, IntRing{}, codec, a, b);
  EXPECT_EQ(net.stats().rounds, planned);
  EXPECT_EQ(net.stats().schedule_misses, 0);
}

TEST(SparsePlanner, Semiring3dPlanMatchesMeasuredRun) {
  const int n = 27;
  const I64Codec codec;
  clique::Network net(n);
  const auto planned = core::semiring3d_planned_rounds(net, n, codec.words_for(9));
  const auto a = random_sparse_matrix(n, 200, 7);
  (void)core::mm_semiring_3d(net, IntRing{}, codec, a, a);
  EXPECT_EQ(net.stats().rounds, planned);
  EXPECT_EQ(net.stats().schedule_misses, 0);
}

TEST(SparsePlanner, FastBilinearPlanMatchesMeasuredRun) {
  const auto plan = core::plan_fast_mm(49, 2);
  const I64Codec codec;
  clique::Network net(plan.clique_n);
  const auto alg = tensor_power(strassen_algorithm(), 2);
  const int sq = static_cast<int>(isqrt(plan.clique_n));
  const int bs = sq / alg.d;
  const auto planned = core::fast_bilinear_planned_rounds(
      net, plan.clique_n, alg,
      codec.words_for(static_cast<std::size_t>(sq)),
      codec.words_for(static_cast<std::size_t>(bs) * bs));
  const auto a = core::pad_matrix(random_sparse_matrix(49, 300, 8),
                                  plan.clique_n, std::int64_t{0});
  (void)core::mm_fast_bilinear(net, IntRing{}, codec, alg, a, a);
  EXPECT_EQ(net.stats().rounds, planned);
  EXPECT_EQ(net.stats().schedule_misses, 0);
}

// The skip gate's soundness: the relay lower bound must never exceed the
// actual Koenig schedule, on the real engine shapes (the review probe that
// caught the n-1 divisor: the relay spreads over n links per phase, and at
// n=64 the fast-bilinear steps schedule BELOW the n-1 bound).
TEST(SparsePlanner, RelayLowerBoundNeverExceedsSchedule) {
  const I64Codec codec;
  for (const int n : {27, 64}) {
    clique::Network net(n);
    const auto c = icbrt(n);
    const auto steps = core::semiring3d_superstep_demands(
        n, codec.words_for(static_cast<std::size_t>(c * c)));
    EXPECT_LE(core::relay_round_lower_bound(n, steps.first),
              net.prepare_schedule(steps.first));
    EXPECT_LE(core::relay_round_lower_bound(n, steps.second),
              net.prepare_schedule(steps.second));
  }
  {
    const int n = 64;  // 8^2: admits depth-1 and depth-2 tensor powers
    clique::Network net(n);
    for (const int depth : {1, 2}) {
      const auto alg = tensor_power(strassen_algorithm(), depth);
      const int bs = 8 / alg.d;
      for (const auto& step : core::fast_bilinear_superstep_demands(
               n, alg, codec.words_for(8),
               codec.words_for(static_cast<std::size_t>(bs) * bs)))
        EXPECT_LE(core::relay_round_lower_bound(n, step),
                  net.prepare_schedule(step))
            << "depth " << depth;
    }
  }
  {
    const auto a = random_sparse_matrix(30, 120, 77);
    const auto b = random_sparse_matrix(30, 150, 78);
    const auto st = core::build_sparse_mm_structure(
        30, pattern_of(a), pattern_of(b),
        [&](std::size_t cnt) { return codec.words_for(cnt); });
    clique::Network net(30);
    for (const auto* phase : {&st.gather, &st.distribute, &st.contribute})
      EXPECT_LE(core::relay_round_lower_bound(30, *phase),
                net.prepare_schedule(*phase));
  }
}

TEST(SparsePlanner, BuildFreeLowerBoundNeverExceedsPlannedRounds) {
  // The build-free sparse_round_lower_bound is what the Auto dispatcher
  // uses to SKIP building and scheduling a sparse plan; its soundness
  // (never above the rounds the real plan would charge) is exactly what
  // makes the skip safe. The bound internally quantises and aligns its
  // per-pair charges with the same sparse_count_bucket / sparse_msg_align
  // the builder uses — alignment is monotone, so the aligned underestimate
  // stays below the real (aligned) message sizes.
  const I64Codec codec;
  const auto vw = [&](std::size_t c) { return codec.words_for(c); };
  int cases = 0;
  for (const auto& [n, nnz_a, nnz_b, seed] :
       {std::tuple{20, 60, 80, 101}, std::tuple{27, 200, 150, 102},
        std::tuple{30, 400, 400, 103}, std::tuple{16, 16, 240, 104}}) {
    const auto a = random_sparse_matrix(n, nnz_a, seed);
    const auto b = random_sparse_matrix(n, nnz_b, seed + 1);
    const auto sa = pattern_of(a);
    const auto sb = pattern_of(b);
    const auto lb = core::sparse_round_lower_bound(n, sa, sb, vw);
    const auto st = core::build_sparse_mm_structure(n, sa, sb, vw);
    clique::Network net(n);
    const auto planned = core::sparse_planned_rounds(net, st);
    EXPECT_LE(lb, planned) << "n=" << n << " seed=" << seed;
    ++cases;
  }
  EXPECT_EQ(cases, 4);
}

TEST(SparsePlanner, QuantisedShapesRepeatAcrossInBucketDrift) {
  // Demand-shape quantisation: distribute / contribute message sizes are
  // functions of the BUCKETED per-row counts (sparse_count_bucket), so an
  // iterate whose counts drift within their buckets stages byte-identical
  // phase demand lists and the next iteration's schedules come from the
  // ScheduleCache without a fresh Euler split. Here S's support is fixed
  // (the gather phase is exact by design) while every T row grows from 9
  // to 12 distinct columns — both in the (8, 16] bucket.
  const int n = 12;
  const I64Codec codec;
  const auto vw = [&](std::size_t c) { return codec.words_for(c); };
  const auto s = random_sparse_matrix(n, 40, 55);
  Matrix<std::int64_t> t1(n, n, 0), t2(n, n, 0);
  for (int k = 0; k < n; ++k) {
    for (int j = 0; j < 12; ++j) {
      t2(k, (k + j) % n) = 1 + j;
      if (j < 9) t1(k, (k + j) % n) = 1 + j;
    }
  }
  const auto st1 = core::build_sparse_mm_structure(n, pattern_of(s),
                                                   pattern_of(t1), vw);
  const auto st2 = core::build_sparse_mm_structure(n, pattern_of(s),
                                                   pattern_of(t2), vw);
  EXPECT_EQ(st1.group_size, st2.group_size);
  EXPECT_EQ(st1.gather, st2.gather);
  EXPECT_EQ(st1.distribute, st2.distribute);
  EXPECT_EQ(st1.contribute, st2.contribute);

  // End-to-end: the second product's supersteps all replay cached
  // schedules (zero fresh misses), with results still exact.
  clique::Network net(n);
  (void)core::mm_semiring_sparse(net, IntRing{}, codec, s, t1);
  const auto misses_after_first = net.stats().schedule_misses;
  const auto got = core::mm_semiring_sparse(net, IntRing{}, codec, s, t2);
  EXPECT_EQ(net.stats().schedule_misses, misses_after_first);
  EXPECT_GT(net.stats().schedule_hits, 0);
  EXPECT_EQ(got, multiply(IntRing{}, s, t2));
}

// ---------------------------------------------------------------------------
// Engine equivalence across semirings.
// ---------------------------------------------------------------------------

TEST(SparseEquivalence, IntRingMatchesDenseEngine) {
  for (const int n : {8, 27}) {  // non-cube and cube sizes both admissible
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
      const auto a = random_sparse_matrix(n, n * 3 / 2, 10 + seed, -50, 50);
      const auto b = random_sparse_matrix(n, n * 2, 20 + seed, -50, 50);
      clique::Network net(n);
      const auto got = core::mm_semiring_sparse(net, IntRing{}, I64Codec{}, a, b);
      EXPECT_EQ(got, multiply(IntRing{}, a, b)) << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(SparseEquivalence, IntRingMatchesSemiring3dExactly) {
  const int n = 27;
  const auto a = random_sparse_matrix(n, 100, 31, -9, 9);
  const auto b = random_sparse_matrix(n, 80, 32, -9, 9);
  clique::Network net1(n), net2(n);
  const auto sparse = core::mm_semiring_sparse(net1, IntRing{}, I64Codec{}, a, b);
  const auto dense = core::mm_semiring_3d(net2, IntRing{}, I64Codec{}, a, b);
  EXPECT_EQ(sparse, dense);
}

TEST(SparseEquivalence, BooleanWithByteAndPackedCodecs) {
  const int n = 20;
  Rng rng(41);
  Matrix<std::uint8_t> a(n, n, 0), b(n, n, 0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      a(i, j) = rng.chance(1, 5) ? 1 : 0;
      b(i, j) = rng.chance(1, 5) ? 1 : 0;
    }
  const auto want = multiply(BoolSemiring{}, a, b);
  clique::Network net1(n), net2(n);
  EXPECT_EQ(core::mm_semiring_sparse(net1, BoolSemiring{}, ByteCodec{}, a, b),
            want);
  EXPECT_EQ(
      core::mm_semiring_sparse(net2, BoolSemiring{}, PackedBoolCodec{}, a, b),
      want);
  // Packed value blocks make the sparse messages strictly cheaper.
  EXPECT_LE(net2.stats().total_words, net1.stats().total_words);
}

TEST(SparseEquivalence, MinPlusWithNegativeWeightsAndInfinities) {
  const int n = 18;
  constexpr auto inf = MinPlusSemiring::kInf;
  Rng rng(43);
  Matrix<std::int64_t> a(n, n, inf), b(n, n, inf);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      if (rng.chance(1, 4)) a(i, j) = rng.next_in(-30, 30);
      if (rng.chance(1, 4)) b(i, j) = rng.next_in(-30, 30);
    }
  const auto want = multiply(MinPlusSemiring{}, a, b);
  clique::Network net(n);
  EXPECT_EQ(core::mm_semiring_sparse(net, MinPlusSemiring{}, I64Codec{}, a, b),
            want);
}

TEST(SparseEquivalence, PolynomialRing) {
  const int n = 9;
  const int cap = 4;
  const PolyRing ring{cap};
  Rng rng(47);
  Matrix<CappedPoly> a(n, n, ring.zero()), b(n, n, ring.zero());
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      if (rng.chance(1, 3))
        a(i, j) = CappedPoly::monomial(cap, static_cast<int>(rng.next_below(cap)));
      if (rng.chance(1, 3))
        b(i, j) = CappedPoly::monomial(cap, static_cast<int>(rng.next_below(cap)));
    }
  const auto want = multiply(ring, a, b);
  clique::Network net(n);
  EXPECT_EQ(core::mm_semiring_sparse(net, ring, PolyCodec{cap}, a, b), want);
}

TEST(SparseEquivalence, EmptyAndDegenerateInputs) {
  const int n = 12;
  const Matrix<std::int64_t> zero(n, n, 0);
  const auto a = random_sparse_matrix(n, 30, 51);
  {
    // Empty factor: the announcement alone settles it — 1 round.
    clique::Network net(n);
    EXPECT_EQ(core::mm_semiring_sparse(net, IntRing{}, I64Codec{}, zero, a),
              zero);
    EXPECT_EQ(net.stats().rounds, 1);
  }
  {
    // Disjoint support (T == 0): product is zero but the gather and the
    // column announcement still run.
    Matrix<std::int64_t> l(n, n, 0), r(n, n, 0);
    for (int i = 0; i < n; ++i) l(i, 0) = 1;  // only column 0
    for (int k = 1; k < n; ++k) r(k, k) = 1;  // rows 1..n-1
    clique::Network net(n);
    EXPECT_EQ(core::mm_semiring_sparse(net, IntRing{}, I64Codec{}, l, r), zero);
  }
  {
    clique::Network net(1);
    Matrix<std::int64_t> s(1, 1, 3), t(1, 1, 5);
    EXPECT_EQ(core::mm_semiring_sparse(net, IntRing{}, I64Codec{}, s, t)(0, 0),
              15);
    EXPECT_EQ(net.stats().rounds, 0);
  }
}

TEST(SparseEquivalence, DenseInputsStillCorrect) {
  // The sparse engine is round-hopeless on dense inputs but must stay
  // correct: Auto relies on result-identity, not on never running it.
  const int n = 10;
  Rng rng(53);
  Matrix<std::int64_t> a(n, n, 0), b(n, n, 0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      a(i, j) = rng.next_in(-5, 5);
      b(i, j) = rng.next_in(-5, 5);
    }
  clique::Network net(n);
  EXPECT_EQ(core::mm_semiring_sparse(net, IntRing{}, I64Codec{}, a, b),
            multiply(IntRing{}, a, b));
}

// ---------------------------------------------------------------------------
// Sparse beats dense in the sparse regime (the Table-1 sparsity claim).
// ---------------------------------------------------------------------------

TEST(SparseRounds, BeatsSemiring3dAtNnzNPow1_5) {
  // Strictly better from n = 64, and >= 2x from n = 125 on (the committed
  // BENCH_mm.json pins 2.5x at 125 growing to >4x at 343 — the factor
  // increases with n because the sparse rounds stay near-constant at this
  // density while the dense engine grows as n^{1/3}).
  for (const int n : {64, 125}) {
    const auto nnz = static_cast<std::int64_t>(n) * isqrt(n);  // ~ n^{3/2}
    const auto a = random_sparse_matrix(n, nnz, 61);
    const auto b = random_sparse_matrix(n, nnz, 62);
    clique::Network net1(n), net2(n);
    const auto sparse = core::mm_semiring_sparse(net1, IntRing{}, I64Codec{}, a, b);
    const auto dense = core::mm_semiring_3d(net2, IntRing{}, I64Codec{}, a, b);
    EXPECT_EQ(sparse, dense);
    const auto factor = n >= 125 ? 2 : 1;
    EXPECT_LT(factor * net1.stats().rounds, net2.stats().rounds)
        << "n=" << n << " sparse=" << net1.stats().rounds
        << " dense=" << net2.stats().rounds;
  }
}

// ---------------------------------------------------------------------------
// Auto dispatch.
// ---------------------------------------------------------------------------

TEST(AutoEngine, PicksSparseAndMatchesItExactlyOnSparseInputs) {
  const int n = 64;
  const auto a = random_sparse_matrix(n, 512, 71);
  const auto b = random_sparse_matrix(n, 512, 72);
  const core::IntMmEngine engine(MmKind::Auto, n);
  ASSERT_EQ(engine.clique_n(), n);
  clique::Network net_auto(n), net_sparse(n), net_dense(n), net_fast(n);
  const auto got = engine.multiply(net_auto, a, b);
  EXPECT_EQ(got, multiply(IntRing{}, a, b));
  // Auto == the fixed sparse engine, bit for bit in rounds (the
  // announcement is shared, not repeated).
  (void)core::mm_semiring_sparse(net_sparse, IntRing{}, I64Codec{}, a, b);
  EXPECT_EQ(net_auto.stats().rounds, net_sparse.stats().rounds);
  // And no fixed engine beats it at this density (64 = 4^3 = 8^2 admits all
  // three fixed engines).
  (void)core::mm_semiring_3d(net_dense, IntRing{}, I64Codec{}, a, b);
  EXPECT_LE(net_auto.stats().rounds, net_dense.stats().rounds);
  const core::IntMmEngine fast(MmKind::Fast, n);
  ASSERT_EQ(fast.clique_n(), n);
  (void)fast.multiply(net_fast, a, b);
  EXPECT_LE(net_auto.stats().rounds, net_fast.stats().rounds);
}

TEST(AutoEngine, FallsBackToDenseWithinOneRoundOnDenseInputs) {
  const int n = 27;
  Rng rng(83);
  Matrix<std::int64_t> a(n, n, 0), b(n, n, 0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      a(i, j) = rng.next_in(1, 9);
      b(i, j) = rng.next_in(1, 9);
    }
  const core::IntMmEngine engine(MmKind::Auto, n);
  clique::Network net_auto(n), net_dense(n);
  const auto got = engine.multiply(net_auto, a, b);
  EXPECT_EQ(got, multiply(IntRing{}, a, b));
  (void)core::mm_semiring_3d(net_dense, IntRing{}, I64Codec{}, a, b);
  // The dense fallback pays exactly the dense engine plus the one
  // announcement round.
  EXPECT_EQ(net_auto.stats().rounds, net_dense.stats().rounds + 1);
}

TEST(AutoEngine, BatchDispatchesAndMatchesSequential) {
  const int n = 27;
  std::vector<Matrix<std::int64_t>> as, bs;
  for (std::uint64_t b = 0; b < 3; ++b) {
    as.push_back(random_sparse_matrix(n, 100, 90 + b));
    bs.push_back(random_sparse_matrix(n, 100, 95 + b));
  }
  const core::IntMmEngine engine(MmKind::Auto, n);
  clique::Network net(n);
  const auto got = engine.multiply_batch(
      net, std::span<const Matrix<std::int64_t>>(as),
      std::span<const Matrix<std::int64_t>>(bs));
  ASSERT_EQ(got.size(), 3u);
  for (std::size_t b = 0; b < 3; ++b)
    EXPECT_EQ(got[b], multiply(IntRing{}, as[b], bs[b])) << "product " << b;
}

TEST(AutoEngine, PadsNonCubeSizesLikeSemiring3d) {
  const core::IntMmEngine engine(MmKind::Auto, 20);
  EXPECT_EQ(engine.clique_n(), 27);
  EXPECT_DOUBLE_EQ(engine.rho(), 1.0 / 3.0);
}

// ---------------------------------------------------------------------------
// Applications: sparse-path triangle counting, sparsity-aware distance
// product, girth with the Auto engine.
// ---------------------------------------------------------------------------

TEST(SparseApplications, TriangleCountingWithAutoEngine) {
  const auto g = random_sparse_graph(40, 100, 101);
  const auto want = ref_count_triangles(g);
  const auto fast = core::count_triangles_cc(g, MmKind::Fast);
  const auto got = core::count_triangles_cc(g, MmKind::Auto);
  EXPECT_EQ(got.count, want);
  EXPECT_LE(got.traffic.rounds, fast.traffic.rounds);
}

TEST(SparseApplications, PowerLawTriangles) {
  const auto g = power_law_graph(60, 150, 2.2, 7);
  EXPECT_EQ(core::count_triangles_cc(g, MmKind::Auto).count,
            ref_count_triangles(g));
}

TEST(SparseApplications, DistanceProductAutoMatchesDense) {
  const int n = 22;  // not a cube: dp_semiring_auto must still work
  const auto g = random_weighted_graph(n, 0.15, 1, 20, 11);
  const auto w = g.weight_matrix();
  clique::Network net(n);
  const auto got = core::dp_semiring_auto(net, w, w);
  EXPECT_EQ(got, multiply(MinPlusSemiring{}, w, w));
  EXPECT_GT(net.stats().rounds, 0);
}

TEST(SparseApplications, GirthThresholdDispatchWorksWithAuto) {
  const auto g = petersen_graph();
  const auto r = core::girth_undirected_cc(g, 5, MmKind::Auto);
  EXPECT_EQ(r.girth, 5);
}

// ---------------------------------------------------------------------------
// Witness products on the sparse engine: the min-plus-with-witness semiring
// (zero {inf, -1}, a genuine additive identity and two-sided annihilator)
// lifted onto the sparse path must agree with the dense 3D witness product.
// ---------------------------------------------------------------------------

Matrix<std::int64_t> random_minplus_matrix(int n, int finite_one_in,
                                           std::uint64_t seed,
                                           std::int64_t lo = 1,
                                           std::int64_t hi = 40) {
  constexpr auto inf = MinPlusSemiring::kInf;
  Rng rng(seed);
  Matrix<std::int64_t> m(n, n, inf);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      if (rng.chance(1, static_cast<std::uint64_t>(finite_one_in)))
        m(i, j) = rng.next_in(lo, hi);
  return m;
}

TEST(SparseWitness, SparseAndDenseWitnessProductsAgree) {
  // Distances must be element-identical. Witness TIES could in principle
  // differ between engines, so the contract asserted for the witnesses is
  // the documented one: every returned witness must reconstruct an optimal
  // split, S(u, q) + T(q, v) == dist(u, v).
  constexpr auto inf = MinPlusSemiring::kInf;
  const int n = 27;
  for (const std::uint64_t seed : {201ull, 202ull}) {
    const auto s = random_minplus_matrix(n, 5, seed);
    const auto t = random_minplus_matrix(n, 5, seed + 50);
    clique::Network net_sparse(n), net_dense(n);
    const auto sp = core::dp_semiring_witness_sparse(net_sparse, s, t);
    const auto de = core::dp_semiring_witness(net_dense, s, t);
    EXPECT_EQ(sp.dist, de.dist);
    for (const auto* r : {&sp, &de})
      for (int u = 0; u < n; ++u)
        for (int v = 0; v < n; ++v) {
          if (r->dist(u, v) >= inf) {
            EXPECT_EQ(r->witness(u, v), -1);
            continue;
          }
          const int q = r->witness(u, v);
          ASSERT_GE(q, 0);
          ASSERT_LT(q, n);
          ASSERT_LT(s(u, q), inf);
          ASSERT_LT(t(q, v), inf);
          EXPECT_EQ(s(u, q) + t(q, v), r->dist(u, v)) << u << "," << v;
        }
    // At this sparsity the witness product is strictly cheaper sparse.
    EXPECT_LT(net_sparse.stats().rounds, net_dense.stats().rounds);
  }
}

TEST(SparseWitness, NegativeWeightsRoundTripThroughSparseEngine) {
  // The witness codec bit-casts entries, so negative tropical weights must
  // survive the sparse wire format too. (n is a cube so the dense witness
  // comparator is admissible; the sparse engine itself takes any n.)
  const int n = 27;
  const auto s = random_minplus_matrix(n, 4, 301, -30, 30);
  const auto t = random_minplus_matrix(n, 4, 302, -30, 30);
  clique::Network net1(n), net2(n);
  const auto sp = core::dp_semiring_witness_sparse(net1, s, t);
  const auto de = core::dp_semiring_witness(net2, s, t);
  EXPECT_EQ(sp.dist, de.dist);
  EXPECT_EQ(sp.dist, multiply(MinPlusSemiring{}, s, t));
}

// ---------------------------------------------------------------------------
// Batched sparse engine.
// ---------------------------------------------------------------------------

TEST(SparseBatch, BatchOfOneIsTrafficIdenticalToSingleProduct) {
  const int n = 24;
  const auto a = random_sparse_matrix(n, 80, 401);
  const auto b = random_sparse_matrix(n, 90, 402);
  clique::Network net1(n), net2(n);
  const auto single = core::mm_semiring_sparse(net1, IntRing{}, I64Codec{},
                                               a, b);
  const auto batch = core::mm_semiring_sparse_batch(
      net2, IntRing{}, I64Codec{},
      std::span<const Matrix<std::int64_t>>(&a, 1),
      std::span<const Matrix<std::int64_t>>(&b, 1));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], single);
  EXPECT_EQ(net1.stats().rounds, net2.stats().rounds);
  EXPECT_EQ(net1.stats().bound_rounds, net2.stats().bound_rounds);
  EXPECT_EQ(net1.stats().supersteps, net2.stats().supersteps);
  EXPECT_EQ(net1.stats().total_words, net2.stats().total_words);
  EXPECT_EQ(net1.stats().max_node_send, net2.stats().max_node_send);
  EXPECT_EQ(net1.stats().max_node_recv, net2.stats().max_node_recv);
}

TEST(SparseBatch, BatchOf8MatchesSequentialWithStrictlyFewerRounds) {
  const int n = 26;
  const std::size_t batch = 8;
  std::vector<Matrix<std::int64_t>> as, bs;
  for (std::size_t b = 0; b < batch; ++b) {
    as.push_back(random_sparse_matrix(n, 70, 500 + b));
    bs.push_back(random_sparse_matrix(n, 80, 520 + b));
  }
  std::int64_t seq_rounds = 0;
  std::vector<Matrix<std::int64_t>> seq;
  for (std::size_t b = 0; b < batch; ++b) {
    clique::Network net(n);
    seq.push_back(
        core::mm_semiring_sparse(net, IntRing{}, I64Codec{}, as[b], bs[b]));
    seq_rounds += net.stats().rounds;
  }
  clique::Network net(n);
  const auto got = core::mm_semiring_sparse_batch(
      net, IntRing{}, I64Codec{}, std::span<const Matrix<std::int64_t>>(as),
      std::span<const Matrix<std::int64_t>>(bs));
  ASSERT_EQ(got.size(), batch);
  for (std::size_t b = 0; b < batch; ++b)
    EXPECT_EQ(got[b], seq[b]) << "product " << b;
  // Shared supersteps spread the merged demand over otherwise-idle links:
  // strictly fewer rounds than the 8 sequential runs.
  EXPECT_LT(net.stats().rounds, seq_rounds);
}

TEST(SparseBatch, PlannedRoundsMatchMeasuredBatchRun) {
  const int n = 22;
  const std::size_t batch = 3;
  std::vector<Matrix<std::int64_t>> as, bs;
  std::vector<core::SparseMmStructure> sts(batch);
  const I64Codec codec;
  for (std::size_t b = 0; b < batch; ++b) {
    as.push_back(random_sparse_matrix(n, 60, 600 + b));
    bs.push_back(random_sparse_matrix(n, 66, 620 + b));
    sts[b] = core::build_sparse_mm_structure(
        n, pattern_of(as[b]), pattern_of(bs[b]),
        [&](std::size_t c) { return codec.words_for(c); });
  }
  clique::Network net(n);
  const auto planned =
      static_cast<std::int64_t>(batch) +
      core::sparse_planned_rounds_batch(
          net, std::span<const core::SparseMmStructure>(sts));
  (void)core::mm_semiring_sparse_batch(
      net, IntRing{}, codec, std::span<const Matrix<std::int64_t>>(as),
      std::span<const Matrix<std::int64_t>>(bs));
  EXPECT_EQ(net.stats().rounds, planned);
  EXPECT_EQ(net.stats().schedule_misses, 0);
}

TEST(SparseBatch, TrivialMembersRideAlongForFree) {
  const int n = 16;
  const Matrix<std::int64_t> zero(n, n, 0);
  const auto a = random_sparse_matrix(n, 40, 701);
  const auto b = random_sparse_matrix(n, 44, 702);
  std::vector<Matrix<std::int64_t>> as{a, zero};
  std::vector<Matrix<std::int64_t>> bs{b, b};
  clique::Network net(n);
  const auto got = core::mm_semiring_sparse_batch(
      net, IntRing{}, I64Codec{}, std::span<const Matrix<std::int64_t>>(as),
      std::span<const Matrix<std::int64_t>>(bs));
  EXPECT_EQ(got[0], multiply(IntRing{}, a, b));
  EXPECT_EQ(got[1], zero);
}

// ---------------------------------------------------------------------------
// Per-iteration dispatch: the densification flip.
// ---------------------------------------------------------------------------

TEST(DensificationTrace, PowerLawApspFlipsSparseToDenseOnce) {
  // Heavy-tailed degrees, m ~ 2.5n: the weight matrix is sparse, its square
  // fills in fast. The per-iteration dispatcher must run the FIRST squaring
  // sparse and flip to the locked dense engine at iteration index 1 —
  // never to return (hysteresis), because min-plus squaring densifies
  // monotonically.
  auto g = power_law_graph(60, 150, 2.2, 7);
  const auto r = core::apsp_semiring(g);
  ASSERT_GE(r.engine_trace.size(), 2u);
  EXPECT_EQ(r.engine_trace[0], core::AutoEngineChoice::Sparse);
  EXPECT_EQ(r.engine_trace[1], core::AutoEngineChoice::Semiring3D);
  for (std::size_t i = 2; i < r.engine_trace.size(); ++i)
    EXPECT_EQ(r.engine_trace[i], core::AutoEngineChoice::Semiring3D)
        << "hysteresis must keep the dense lock at iteration " << i;
}

TEST(DensificationTrace, HysteresisSkipsTheAnnouncementRound) {
  // Two identical dense products through one context: the first pays the
  // announcement (dense engine + 1), the second replays the locked engine
  // with no announcement — exactly the fixed engine's rounds.
  const int n = 27;
  Rng rng(83);
  Matrix<std::int64_t> a(n, n, 0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) a(i, j) = rng.next_in(1, 9);
  clique::Network net(n), net_fixed(n);
  core::MmDispatchContext ctx;
  const I64Codec codec;
  (void)core::mm_semiring_auto(net, IntRing{}, codec, a, a, nullptr, nullptr,
                               nullptr, &ctx);
  const auto first = net.stats().rounds;
  (void)core::mm_semiring_auto(net, IntRing{}, codec, a, a, nullptr, nullptr,
                               nullptr, &ctx);
  const auto second = net.stats().rounds - first;
  (void)core::mm_semiring_3d(net_fixed, IntRing{}, codec, a, a);
  EXPECT_EQ(first, net_fixed.stats().rounds + 1);
  EXPECT_EQ(second, net_fixed.stats().rounds);
  ASSERT_EQ(ctx.trace.size(), 2u);
  EXPECT_EQ(ctx.trace[0], core::AutoEngineChoice::Semiring3D);
  EXPECT_EQ(ctx.trace[1], core::AutoEngineChoice::Semiring3D);
}

}  // namespace
}  // namespace cca
