// TrafficStats regression against the seed implementation.
//
// The flat-arena data plane, the parallel local compute, and the kernel
// specializations are all wall-clock optimisations: they must not move a
// single word or round. The constants below are the exact TrafficStats
// (rounds, bound_rounds, supersteps, total_words, max_node_send,
// max_node_recv) recorded from the seed per-pair-queue implementation for a
// fixed set of deterministic workloads; any drift indicates the
// paper-replication tables changed.
#include <gtest/gtest.h>

#include <cstdint>

#include "clique/network.hpp"
#include "clique/primitives.hpp"
#include "core/apsp.hpp"
#include "core/color_coding.hpp"
#include "core/counting.hpp"
#include "core/distance_product.hpp"
#include "core/engine.hpp"
#include "core/girth.hpp"
#include "core/mm.hpp"
#include "core/witness.hpp"
#include "graph/generators.hpp"
#include "matrix/codec.hpp"
#include "matrix/semiring.hpp"
#include "util/rng.hpp"

namespace cca {
namespace {

using core::MmKind;

struct Expected {
  std::int64_t rounds;
  std::int64_t bound_rounds;
  std::int64_t supersteps;
  std::int64_t total_words;
  std::int64_t max_node_send;
  std::int64_t max_node_recv;
};

void expect_stats(const clique::TrafficStats& got, const Expected& want,
                  const char* what) {
  EXPECT_EQ(got.rounds, want.rounds) << what;
  EXPECT_EQ(got.bound_rounds, want.bound_rounds) << what;
  EXPECT_EQ(got.supersteps, want.supersteps) << what;
  EXPECT_EQ(got.total_words, want.total_words) << what;
  EXPECT_EQ(got.max_node_send, want.max_node_send) << what;
  EXPECT_EQ(got.max_node_recv, want.max_node_recv) << what;
}

Matrix<std::int64_t> random_matrix(int n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<std::int64_t> m(n, n, 0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) m(i, j) = rng.next_in(0, 1000);
  return m;
}

TEST(TrafficRegression, MmSemiring3D) {
  clique::Network net(64);
  const IntRing ring;
  const I64Codec codec;
  (void)core::mm_semiring_3d(net, ring, codec, random_matrix(64, 1),
                             random_matrix(64, 2));
  expect_stats(net.stats(), {24, 12, 2, 46848, 496, 496}, "mm semiring n=64");
}

TEST(TrafficRegression, MmFastBilinear) {
  const auto plan = core::plan_fast_mm(49, 2);
  clique::Network net(plan.clique_n);
  const IntRing ring;
  const I64Codec codec;
  const auto alg = tensor_power(strassen_algorithm(), 2);
  const auto a =
      core::pad_matrix(random_matrix(49, 1), plan.clique_n, std::int64_t{0});
  const auto b =
      core::pad_matrix(random_matrix(49, 2), plan.clique_n, std::int64_t{0});
  (void)core::mm_fast_bilinear(net, ring, codec, alg, a, b);
  expect_stats(net.stats(), {29, 17, 4, 49140, 392, 504},
               "mm fast bilinear n=49 depth=2");
}

TEST(TrafficRegression, MmBooleanPackedCodec) {
  clique::Network net(64);
  const BoolSemiring sr;
  Rng rng(11);
  Matrix<std::uint8_t> a(64, 64, 0);
  for (int i = 0; i < 64; ++i)
    for (int j = 0; j < 64; ++j)
      a(i, j) = static_cast<std::uint8_t>(rng.next_below(2));
  (void)core::mm_semiring_3d(net, sr, PackedBoolCodec{}, a, a);
  expect_stats(net.stats(), {4, 2, 2, 2928, 31, 31}, "bool packed mm n=64");
}

TEST(TrafficRegression, DistanceProduct) {
  clique::Network net(27);
  (void)core::dp_semiring(net, random_matrix(27, 3), random_matrix(27, 4));
  expect_stats(net.stats(), {21, 9, 2, 5994, 153, 153}, "dp semiring n=27");
}

TEST(TrafficRegression, ApspSemiring) {
  // The seed pin was {190, 90, 10, 59940, 306, 306}: 5 scheduled squarings
  // of 38 rounds each, even though this graph's distances converge after
  // the third. Two deliberate changes moved it: (1) the convergence vote
  // (1 round per undecided iteration) exits after the 4th squaring shows
  // no improvement — 4 squarings + 4 votes on the fixed dense path; (2)
  // the default Auto engine runs the FIRST squaring (mostly-infinite
  // iterate) on the sparse engine, then flips dense under hysteresis.
  // The sparse first squaring charges the demand-shape quantisation
  // padding (bucketed distribute/contribute frames, see
  // build_sparse_mm_structure): 143/73/38725 -> 150/79/39094, within the
  // documented < 2x phase bound and paid for real on the wire; the
  // per-phase message alignment (sparse_msg_align: 4 words at this size,
  // contribute widens to 8 only from n >= 200; <= align-1 extra words per
  // pair) adds 150/39094 -> 152/39264 on top, buying the scheduler's
  // identical-halves collapse on the first levels of the aligned phases'
  // Euler splits.
  const auto g = random_weighted_graph(20, 0.3, 1, 50, 7);
  const auto auto_run = core::apsp_semiring(g);
  expect_stats(auto_run.traffic, {152, 79, 9, 39264, 306, 306},
               "apsp semiring auto n=20");
  // Auto plans every candidate through prepare_schedule (cache-warming,
  // counted as neither hit nor miss), so the staged supersteps all replay.
  EXPECT_EQ(auto_run.traffic.schedule_misses, 0);
  EXPECT_EQ(auto_run.traffic.schedule_hits, 9);
  ASSERT_EQ(auto_run.engine_trace.size(), 4u);
  EXPECT_EQ(auto_run.engine_trace[0], core::AutoEngineChoice::Sparse);
  EXPECT_EQ(auto_run.engine_trace[1], core::AutoEngineChoice::Semiring3D);

  const auto fixed_run = core::apsp_semiring(g, MmKind::Semiring3D);
  expect_stats(fixed_run.traffic, {156, 76, 8, 47952, 306, 306},
               "apsp semiring 3d n=20");
  // 4 iterations x 2 supersteps; the first iteration computes the two
  // schedules, the rest replay (votes are charge-only broadcasts).
  EXPECT_EQ(fixed_run.traffic.schedule_misses, 2);
  EXPECT_EQ(fixed_run.traffic.schedule_hits, 6);
  // Dispatch must never change results.
  EXPECT_EQ(auto_run.dist, fixed_run.dist);
  EXPECT_EQ(auto_run.next_hop, fixed_run.next_hop);
}

TEST(TrafficRegression, ApspSeidel) {
  const auto g = gnp_random_graph(20, 0.3, 7);
  expect_stats(core::apsp_seidel(g, MmKind::Semiring3D, -1).traffic,
               {110, 50, 10, 29970, 153, 153}, "apsp seidel n=20");
}

TEST(TrafficRegression, GirthUndirected) {
  const auto g = gnp_random_graph(40, 0.3, 5);
  const auto r = core::girth_undirected_cc(g, 123, MmKind::Semiring3D, -1, 1);
  EXPECT_EQ(r.girth, 3);
  EXPECT_FALSE(r.used_sparse_path);
  // Seed-agreement audit: the dense path's Monte Carlo seed was consumed
  // with NO accounting at all in the seed implementation. agree_on_seed now
  // stages a real broadcast superstep: +1 round, +1 bound round, +1
  // superstep, +(n-1)=39 words over the old {26, 14, 2, 46848, ...} pin.
  expect_stats(r.traffic, {27, 15, 3, 46887, 496, 496},
               "girth undirected n=40");
}

// ---------------------------------------------------------------------------
// Seed-agreement accounting. The Monte Carlo entry points each claim "one
// round to agree on the shared seed"; the seed implementation charged the
// round without moving a word (witnesses, colour coding) or skipped the
// charge entirely (girth). agree_on_seed now stages the broadcast for
// real; these pins are the corrected counts.
// ---------------------------------------------------------------------------

TEST(TrafficRegression, WitnessSeedAgreement) {
  const int n = 8;
  const auto s = random_matrix(n, 41);
  const auto t = random_matrix(n, 42);
  const MinPlusSemiring sr;
  const auto p = multiply(sr, s, t);
  clique::Network net(n);
  const core::DpOracle oracle = [](const Matrix<std::int64_t>& a,
                                   const Matrix<std::int64_t>& b) {
    return multiply(MinPlusSemiring{}, a, b);
  };
  // Isolate the seed-agreement cost: a free (local) oracle leaves only the
  // broadcast superstep plus the verify_witnesses supersteps.
  const auto before = net.stats();
  (void)core::dp_witnesses(net, s, t, p, oracle, 123, 1);
  const auto delta = net.stats() - before;
  // The former implementation charged 1 round / 0 words / 0 supersteps for
  // the seed; the broadcast now accounts 1 round, 1 superstep, n-1 = 7
  // words on top of the verification traffic.
  expect_stats(delta, {61, 26, 16, 1407, 21, 21}, "dp_witnesses seed n=8");
}

TEST(TrafficRegression, ColourCodingSeedAgreement) {
  const auto g = planted_cycle_graph(27, 5, 0.0, 3);
  const auto r = core::detect_k_cycle_cc(g, 5, 99, 2, MmKind::Semiring3D);
  // One broadcast superstep (1 round, 26 words) precedes the trials; the
  // remainder is the colour-coding products of the 2 trials.
  expect_stats(r.traffic, {5043, 2163, 481, 1438586, 153, 153},
               "detect 5-cycle n=27 trials=2");
}

// ---------------------------------------------------------------------------
// Round-charge audit: broadcast_from / disseminate. The primitives charge
// analytical round counts for documented schedules without staging the
// payload; the references below STAGE those exact schedules word by word
// (Direct router: rounds == max link load) and the tests assert charge ==
// measured, over adversarial word distributions. Two drifts were found and
// corrected: broadcast_from charged the rebroadcast phase at n == 2 where
// it moves nothing (2x overcharge), and disseminate's phase 3 charged
// ceil(W/n) even when the heaviest holders' shares were contributed by the
// very nodes they serve (the adversarial g-mod-n alignments).
// ---------------------------------------------------------------------------

/// Stage broadcast_from's documented schedule for real and return the
/// measured rounds: scatter round-robin, then helpers serve every node
/// that does not already hold the word (all but src and themselves).
std::int64_t staged_broadcast_from(int n, int src, std::int64_t k) {
  clique::Network net(n);
  if (n == 1 || k == 0) return 0;
  if (k == 1) {  // documented k == 1 schedule: direct broadcast
    for (int u = 0; u < n; ++u)
      if (u != src) net.send(src, u, 1);
    net.deliver(clique::Router::Direct);
    return net.stats().rounds;
  }
  const int helpers = n - 1;
  // Scatter: word j goes to helper (j mod (n-1)), skipping src.
  std::vector<std::vector<clique::Word>> held(static_cast<std::size_t>(n));
  for (std::int64_t j = 0; j < k; ++j) {
    int h = static_cast<int>(j % helpers);
    if (h >= src) ++h;
    net.send(src, h, static_cast<clique::Word>(j));
    held[static_cast<std::size_t>(h)].push_back(static_cast<clique::Word>(j));
  }
  net.deliver(clique::Router::Direct);
  // Rebroadcast: helper -> every node except src and itself.
  bool any = false;
  for (int h = 0; h < n; ++h)
    for (const auto w : held[static_cast<std::size_t>(h)])
      for (int u = 0; u < n; ++u) {
        if (u == src || u == h) continue;
        net.send(h, u, w);
        any = true;
      }
  if (any) net.deliver(clique::Router::Direct);
  return net.stats().rounds;
}

TEST(TrafficRegression, BroadcastFromChargeMatchesStagedSchedule) {
  struct Case {
    int n;
    std::int64_t k;
  };
  for (const auto& c :
       {Case{2, 1}, Case{2, 2}, Case{2, 7}, Case{3, 2}, Case{5, 1},
        Case{5, 4}, Case{5, 5}, Case{10, 9}, Case{10, 90}, Case{10, 91}}) {
    clique::Network net(c.n);
    clique::broadcast_from(net, 0, c.k);
    EXPECT_EQ(net.stats().rounds, staged_broadcast_from(c.n, 0, c.k))
        << "n=" << c.n << " k=" << c.k;
  }
  // The corrected n == 2 drift, pinned: the seed charge was 2*ceil(k/1).
  {
    clique::Network net(2);
    clique::broadcast_from(net, 0, 7);
    EXPECT_EQ(net.stats().rounds, 7);  // was 14
  }
}

/// Stage disseminate's documented phase-3 schedule for real (every holder
/// serves each held word to everyone but its contributor and itself) and
/// return the measured rounds of that superstep alone.
std::int64_t staged_disseminate_phase3(
    int n, const std::vector<std::vector<clique::Word>>& per_node) {
  clique::Network net(n);
  std::int64_t g = 0;
  std::vector<std::vector<std::pair<int, clique::Word>>> held(
      static_cast<std::size_t>(n));  // holder -> (contributor, word)
  for (int v = 0; v < n; ++v)
    for (const auto w : per_node[static_cast<std::size_t>(v)]) {
      held[static_cast<std::size_t>(g % n)].push_back({v, w});
      ++g;
    }
  bool any = false;
  for (int h = 0; h < n; ++h)
    for (const auto& [v, w] : held[static_cast<std::size_t>(h)])
      for (int u = 0; u < n; ++u) {
        if (u == h || u == v) continue;
        net.send(h, u, w);
        any = true;
      }
  if (any) net.deliver(clique::Router::Direct);
  return net.stats().rounds;
}

TEST(TrafficRegression, DisseminateChargeMatchesStagedSchedule) {
  struct Case {
    const char* what;
    int n;
    std::vector<std::vector<clique::Word>> lists;
  };
  const Case cases[] = {
      {"single word, foreign holder (n=2)", 2, {{}, {9}}},
      {"all words from node 0 (n=2)", 2, {{1, 2, 3, 4, 5}, {}}},
      {"adversarial alignment (n=3)", 3, {{}, {7}, {8, 9, 10}}},
      {"every contributor its own holder (n=4)", 4, {{1}, {2}, {3}, {4}}},
      {"one heavy contributor (n=5)", 5, {{}, {}, {1, 2, 3, 4, 5, 6, 7}, {}, {}}},
      {"uniform (n=6)", 6, {{1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, 10}, {11, 12}}},
  };
  for (const auto& c : cases) {
    // Total measured = phase1 (1 round) + phase2 (the primitive's own
    // staged relay, replayed identically here) + phase3 reference.
    clique::Network net(c.n);
    const auto all = clique::disseminate(net, c.lists);
    std::size_t want_size = 0;
    for (const auto& l : c.lists) want_size += l.size();
    EXPECT_EQ(all.size(), want_size);
    clique::Network relay(c.n);
    std::int64_t g = 0;
    for (int v = 0; v < c.n; ++v)
      for (const auto w : c.lists[static_cast<std::size_t>(v)]) {
        relay.send(v, static_cast<int>(g % c.n), w);
        ++g;
      }
    if (g > 0) relay.deliver();
    const auto want = 1 + relay.stats().rounds +
                      staged_disseminate_phase3(c.n, c.lists);
    EXPECT_EQ(net.stats().rounds, want) << c.what;
  }
  // The corrected drifts, pinned. Adversarial alignment at n=3: holder 0's
  // 2-word share comes one each from nodes 1 and 2, so no phase-3 link
  // carries more than 1 word — the seed charge said ceil(4/3) = 2.
  {
    clique::Network net(3);
    (void)clique::disseminate(net, {{}, {7}, {8, 9, 10}});
    EXPECT_EQ(net.stats().rounds, 1 + 2 + 1);  // counts + relay + phase3
  }
  // n=2 with the only word already at its holder's audience: phase 3 moves
  // nothing (the seed charge said ceil(1/2) = 1).
  {
    clique::Network net(2);
    (void)clique::disseminate(net, {{}, {9}});
    const auto r = net.stats().rounds;
    clique::Network relay(2);
    relay.send(1, 0, 9);
    relay.deliver();
    EXPECT_EQ(r, 1 + relay.stats().rounds);  // no phase-3 charge at all
  }
}

TEST(TrafficRegression, CycleCounting) {
  const auto g = gnp_random_graph(25, 0.3, 9);
  expect_stats(core::count_triangles_cc(g, MmKind::Semiring3D, -1).traffic,
               {22, 10, 2, 5994, 153, 153}, "triangles n=25");
  expect_stats(core::count_4cycles_cc(g, MmKind::Semiring3D, -1).traffic,
               {27, 12, 3, 6696, 153, 153}, "4-cycles n=25");
  expect_stats(core::count_5cycles_cc(g, MmKind::Semiring3D, -1).traffic,
               {45, 21, 4, 11988, 153, 153}, "5-cycles n=25");
}

}  // namespace
}  // namespace cca
