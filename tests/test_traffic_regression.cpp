// TrafficStats regression against the seed implementation.
//
// The flat-arena data plane, the parallel local compute, and the kernel
// specializations are all wall-clock optimisations: they must not move a
// single word or round. The constants below are the exact TrafficStats
// (rounds, bound_rounds, supersteps, total_words, max_node_send,
// max_node_recv) recorded from the seed per-pair-queue implementation for a
// fixed set of deterministic workloads; any drift indicates the
// paper-replication tables changed.
#include <gtest/gtest.h>

#include <cstdint>

#include "clique/network.hpp"
#include "core/apsp.hpp"
#include "core/color_coding.hpp"
#include "core/counting.hpp"
#include "core/distance_product.hpp"
#include "core/engine.hpp"
#include "core/girth.hpp"
#include "core/mm.hpp"
#include "core/witness.hpp"
#include "graph/generators.hpp"
#include "matrix/codec.hpp"
#include "matrix/semiring.hpp"
#include "util/rng.hpp"

namespace cca {
namespace {

using core::MmKind;

struct Expected {
  std::int64_t rounds;
  std::int64_t bound_rounds;
  std::int64_t supersteps;
  std::int64_t total_words;
  std::int64_t max_node_send;
  std::int64_t max_node_recv;
};

void expect_stats(const clique::TrafficStats& got, const Expected& want,
                  const char* what) {
  EXPECT_EQ(got.rounds, want.rounds) << what;
  EXPECT_EQ(got.bound_rounds, want.bound_rounds) << what;
  EXPECT_EQ(got.supersteps, want.supersteps) << what;
  EXPECT_EQ(got.total_words, want.total_words) << what;
  EXPECT_EQ(got.max_node_send, want.max_node_send) << what;
  EXPECT_EQ(got.max_node_recv, want.max_node_recv) << what;
}

Matrix<std::int64_t> random_matrix(int n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<std::int64_t> m(n, n, 0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) m(i, j) = rng.next_in(0, 1000);
  return m;
}

TEST(TrafficRegression, MmSemiring3D) {
  clique::Network net(64);
  const IntRing ring;
  const I64Codec codec;
  (void)core::mm_semiring_3d(net, ring, codec, random_matrix(64, 1),
                             random_matrix(64, 2));
  expect_stats(net.stats(), {24, 12, 2, 46848, 496, 496}, "mm semiring n=64");
}

TEST(TrafficRegression, MmFastBilinear) {
  const auto plan = core::plan_fast_mm(49, 2);
  clique::Network net(plan.clique_n);
  const IntRing ring;
  const I64Codec codec;
  const auto alg = tensor_power(strassen_algorithm(), 2);
  const auto a =
      core::pad_matrix(random_matrix(49, 1), plan.clique_n, std::int64_t{0});
  const auto b =
      core::pad_matrix(random_matrix(49, 2), plan.clique_n, std::int64_t{0});
  (void)core::mm_fast_bilinear(net, ring, codec, alg, a, b);
  expect_stats(net.stats(), {29, 17, 4, 49140, 392, 504},
               "mm fast bilinear n=49 depth=2");
}

TEST(TrafficRegression, MmBooleanPackedCodec) {
  clique::Network net(64);
  const BoolSemiring sr;
  Rng rng(11);
  Matrix<std::uint8_t> a(64, 64, 0);
  for (int i = 0; i < 64; ++i)
    for (int j = 0; j < 64; ++j)
      a(i, j) = static_cast<std::uint8_t>(rng.next_below(2));
  (void)core::mm_semiring_3d(net, sr, PackedBoolCodec{}, a, a);
  expect_stats(net.stats(), {4, 2, 2, 2928, 31, 31}, "bool packed mm n=64");
}

TEST(TrafficRegression, DistanceProduct) {
  clique::Network net(27);
  (void)core::dp_semiring(net, random_matrix(27, 3), random_matrix(27, 4));
  expect_stats(net.stats(), {21, 9, 2, 5994, 153, 153}, "dp semiring n=27");
}

TEST(TrafficRegression, ApspSemiring) {
  const auto g = random_weighted_graph(20, 0.3, 1, 50, 7);
  const auto traffic = core::apsp_semiring(g).traffic;
  expect_stats(traffic, {190, 90, 10, 59940, 306, 306}, "apsp semiring n=20");
  // Schedule-cache telemetry: the 5 squarings stage byte-identical shapes,
  // so only the first iteration's two supersteps compute schedules.
  EXPECT_EQ(traffic.schedule_misses, 2);
  EXPECT_EQ(traffic.schedule_hits, 8);
}

TEST(TrafficRegression, ApspSeidel) {
  const auto g = gnp_random_graph(20, 0.3, 7);
  expect_stats(core::apsp_seidel(g, MmKind::Semiring3D, -1).traffic,
               {110, 50, 10, 29970, 153, 153}, "apsp seidel n=20");
}

TEST(TrafficRegression, GirthUndirected) {
  const auto g = gnp_random_graph(40, 0.3, 5);
  const auto r = core::girth_undirected_cc(g, 123, MmKind::Semiring3D, -1, 1);
  EXPECT_EQ(r.girth, 3);
  EXPECT_FALSE(r.used_sparse_path);
  // Seed-agreement audit: the dense path's Monte Carlo seed was consumed
  // with NO accounting at all in the seed implementation. agree_on_seed now
  // stages a real broadcast superstep: +1 round, +1 bound round, +1
  // superstep, +(n-1)=39 words over the old {26, 14, 2, 46848, ...} pin.
  expect_stats(r.traffic, {27, 15, 3, 46887, 496, 496},
               "girth undirected n=40");
}

// ---------------------------------------------------------------------------
// Seed-agreement accounting. The Monte Carlo entry points each claim "one
// round to agree on the shared seed"; the seed implementation charged the
// round without moving a word (witnesses, colour coding) or skipped the
// charge entirely (girth). agree_on_seed now stages the broadcast for
// real; these pins are the corrected counts.
// ---------------------------------------------------------------------------

TEST(TrafficRegression, WitnessSeedAgreement) {
  const int n = 8;
  const auto s = random_matrix(n, 41);
  const auto t = random_matrix(n, 42);
  const MinPlusSemiring sr;
  const auto p = multiply(sr, s, t);
  clique::Network net(n);
  const core::DpOracle oracle = [](const Matrix<std::int64_t>& a,
                                   const Matrix<std::int64_t>& b) {
    return multiply(MinPlusSemiring{}, a, b);
  };
  // Isolate the seed-agreement cost: a free (local) oracle leaves only the
  // broadcast superstep plus the verify_witnesses supersteps.
  const auto before = net.stats();
  (void)core::dp_witnesses(net, s, t, p, oracle, 123, 1);
  const auto delta = net.stats() - before;
  // The former implementation charged 1 round / 0 words / 0 supersteps for
  // the seed; the broadcast now accounts 1 round, 1 superstep, n-1 = 7
  // words on top of the verification traffic.
  expect_stats(delta, {61, 26, 16, 1407, 21, 21}, "dp_witnesses seed n=8");
}

TEST(TrafficRegression, ColourCodingSeedAgreement) {
  const auto g = planted_cycle_graph(27, 5, 0.0, 3);
  const auto r = core::detect_k_cycle_cc(g, 5, 99, 2, MmKind::Semiring3D);
  // One broadcast superstep (1 round, 26 words) precedes the trials; the
  // remainder is the colour-coding products of the 2 trials.
  expect_stats(r.traffic, {5043, 2163, 481, 1438586, 153, 153},
               "detect 5-cycle n=27 trials=2");
}

TEST(TrafficRegression, CycleCounting) {
  const auto g = gnp_random_graph(25, 0.3, 9);
  expect_stats(core::count_triangles_cc(g, MmKind::Semiring3D, -1).traffic,
               {22, 10, 2, 5994, 153, 153}, "triangles n=25");
  expect_stats(core::count_4cycles_cc(g, MmKind::Semiring3D, -1).traffic,
               {27, 12, 3, 6696, 153, 153}, "4-cycles n=25");
  expect_stats(core::count_5cycles_cc(g, MmKind::Semiring3D, -1).traffic,
               {45, 21, 4, 11988, 153, 153}, "5-cycles n=25");
}

}  // namespace
}  // namespace cca
