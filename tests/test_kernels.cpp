// Equivalence tests for the specialized node-local kernels: bit-packed
// Boolean multiply and the blocked min-plus product must agree entry-for-
// entry with the schoolbook multiply() over the corresponding semiring.
#include <gtest/gtest.h>

#include "matrix/kernels.hpp"
#include "matrix/matrix.hpp"
#include "matrix/ops.hpp"
#include "matrix/semiring.hpp"
#include "util/rng.hpp"

namespace cca {
namespace {

Matrix<std::uint8_t> random_bool_matrix(int rows, int cols, double density,
                                        Rng& rng) {
  Matrix<std::uint8_t> m(rows, cols, 0);
  for (int i = 0; i < rows; ++i)
    for (int j = 0; j < cols; ++j)
      m(i, j) = rng.next_double() < density ? 1 : 0;
  return m;
}

Matrix<std::int64_t> random_minplus_matrix(int rows, int cols,
                                           double inf_density, Rng& rng) {
  Matrix<std::int64_t> m(rows, cols, 0);
  for (int i = 0; i < rows; ++i)
    for (int j = 0; j < cols; ++j)
      m(i, j) = rng.next_double() < inf_density ? MinPlusSemiring::kInf
                                                : rng.next_in(-50, 1000);
  return m;
}

TEST(BoolPackedKernel, MatchesSchoolbookOnRandomSquare) {
  Rng rng(7);
  const BoolSemiring sr;
  for (const int n : {1, 2, 17, 63, 64, 65, 100}) {
    for (const double density : {0.05, 0.5, 0.95}) {
      const auto a = random_bool_matrix(n, n, density, rng);
      const auto b = random_bool_matrix(n, n, density, rng);
      EXPECT_EQ(multiply_bool_packed(a, b), multiply(sr, a, b))
          << "n=" << n << " density=" << density;
    }
  }
}

TEST(BoolPackedKernel, MatchesSchoolbookOnRectangles) {
  Rng rng(8);
  const BoolSemiring sr;
  const struct {
    int n, k, m;
  } shapes[] = {{3, 70, 5}, {65, 2, 130}, {1, 128, 1}, {20, 1, 64}};
  for (const auto& s : shapes) {
    const auto a = random_bool_matrix(s.n, s.k, 0.3, rng);
    const auto b = random_bool_matrix(s.k, s.m, 0.3, rng);
    EXPECT_EQ(multiply_bool_packed(a, b), multiply(sr, a, b));
  }
}

TEST(BoolPackedKernel, LocalMultiplyDispatchesToPackedKernel) {
  Rng rng(9);
  const BoolSemiring sr;
  const auto a = random_bool_matrix(40, 40, 0.4, rng);
  const auto b = random_bool_matrix(40, 40, 0.4, rng);
  EXPECT_EQ(local_multiply(sr, a, b), multiply(sr, a, b));
}

TEST(MinPlusBlockedKernel, MatchesSchoolbookOnRandomSquare) {
  Rng rng(10);
  const MinPlusSemiring sr;
  for (const int n : {1, 2, 16, 63, 64, 65, 90}) {
    for (const double inf_density : {0.0, 0.3, 0.9}) {
      const auto a = random_minplus_matrix(n, n, inf_density, rng);
      const auto b = random_minplus_matrix(n, n, inf_density, rng);
      EXPECT_EQ(multiply_minplus_blocked(a, b), multiply(sr, a, b))
          << "n=" << n << " inf_density=" << inf_density;
    }
  }
}

TEST(MinPlusBlockedKernel, NegativeEntriesDoNotBeatInfinity) {
  // Regression guard for the saturation rule: a finite-but-negative left
  // entry combined with an infinite right entry must yield infinity, not
  // (negative + kInf).
  const MinPlusSemiring sr;
  Matrix<std::int64_t> a(2, 2, 0);
  a(0, 0) = -40;
  a(0, 1) = -7;
  Matrix<std::int64_t> b(2, 2, MinPlusSemiring::kInf);
  b(1, 1) = 3;
  const auto expect = multiply(sr, a, b);
  const auto got = multiply_minplus_blocked(a, b);
  EXPECT_EQ(got, expect);
  EXPECT_TRUE(MinPlusSemiring::is_inf(got(0, 0)));
  EXPECT_EQ(got(0, 1), -4);
}

TEST(MinPlusBlockedKernel, LocalMultiplyDispatchesToBlockedKernel) {
  Rng rng(11);
  const MinPlusSemiring sr;
  const auto a = random_minplus_matrix(33, 33, 0.2, rng);
  const auto b = random_minplus_matrix(33, 33, 0.2, rng);
  EXPECT_EQ(local_multiply(sr, a, b), multiply(sr, a, b));
}

Matrix<std::int64_t> random_int_matrix(int rows, int cols, Rng& rng) {
  Matrix<std::int64_t> m(rows, cols, 0);
  for (int i = 0; i < rows; ++i)
    for (int j = 0; j < cols; ++j) m(i, j) = rng.next_in(-1000, 1000);
  return m;
}

TEST(I64BlockedKernel, MatchesSchoolbookOnRandomSquare) {
  Rng rng(13);
  const IntRing ring;
  for (const int n : {1, 2, 3, 4, 5, 16, 63, 64, 65, 100}) {
    const auto a = random_int_matrix(n, n, rng);
    const auto b = random_int_matrix(n, n, rng);
    EXPECT_EQ(multiply_i64_blocked(a, b), multiply(ring, a, b)) << "n=" << n;
  }
}

TEST(I64BlockedKernel, MatchesSchoolbookOnRectangles) {
  Rng rng(14);
  const IntRing ring;
  const struct {
    int n, k, m;
  } shapes[] = {{3, 70, 5}, {65, 2, 130}, {1, 128, 1}, {20, 1, 64}, {7, 7, 3}};
  for (const auto& s : shapes) {
    const auto a = random_int_matrix(s.n, s.k, rng);
    const auto b = random_int_matrix(s.k, s.m, rng);
    EXPECT_EQ(multiply_i64_blocked(a, b), multiply(ring, a, b))
        << s.n << "x" << s.k << "x" << s.m;
  }
}

TEST(I64BlockedKernel, SparseAndZeroInputs) {
  const IntRing ring;
  Matrix<std::int64_t> a(8, 8, 0);
  Matrix<std::int64_t> b(8, 8, 0);
  a(0, 3) = -7;
  a(7, 7) = 11;
  b(3, 5) = 9;
  b(7, 0) = -2;
  EXPECT_EQ(multiply_i64_blocked(a, b), multiply(ring, a, b));
  const Matrix<std::int64_t> z(5, 5, 0);
  EXPECT_EQ(multiply_i64_blocked(z, z), multiply(ring, z, z));
}

TEST(I64BlockedKernel, LocalMultiplyDispatchesToBlockedKernel) {
  Rng rng(15);
  const IntRing ring;
  const auto a = random_int_matrix(37, 37, rng);
  const auto b = random_int_matrix(37, 37, rng);
  EXPECT_EQ(local_multiply(ring, a, b), multiply(ring, a, b));
  EXPECT_EQ(local_multiply(ring, a, b), multiply_i64_blocked(a, b));
}

/// A semiring with no kernel specialization (xor as addition, and as
/// multiplication over 64-bit masks) — exercises the generic fallback.
/// Zero contract: 0 & x == 0 for every mask.
struct XorAndSemiring {
  using Value = std::uint64_t;
  [[nodiscard]] Value zero() const noexcept { return 0; }
  [[nodiscard]] Value one() const noexcept { return ~Value{0}; }
  [[nodiscard]] Value add(Value a, Value b) const noexcept { return a ^ b; }
  [[nodiscard]] Value mul(Value a, Value b) const noexcept { return a & b; }
};

TEST(LocalMultiply, GenericSemiringFallsBackToSchoolbook) {
  Rng rng(12);
  const XorAndSemiring sr;
  Matrix<std::uint64_t> a(10, 10, 0);
  Matrix<std::uint64_t> b(10, 10, 0);
  for (int i = 0; i < 10; ++i)
    for (int j = 0; j < 10; ++j) {
      a(i, j) = rng.next();
      b(i, j) = rng.next();
    }
  EXPECT_EQ(local_multiply(sr, a, b), multiply(sr, a, b));
}

}  // namespace
}  // namespace cca
