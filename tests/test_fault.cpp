// Chaos suite for the fault-tolerant data plane (fault.hpp / the hardened
// deliver in network.cpp) and for the typed-error satellites (contracts.hpp
// CCA_VALIDATE sites, configurable contract failure mode).
//
// Two kinds of coverage:
//  * Exact pins at the Network level, where the hardened superstep's charges
//    (checksum trailers, verify round, duplicate doubling, NACK + exact
//    retransmission schedules, crash accounting) are computed by hand or
//    replayed through the public fault_hash/fault_coin oracle — so any drift
//    in the charging discipline fails loudly.
//  * End-to-end chaos at the algorithm level: APSP / triangle counting /
//    girth under seeded fault mixes must return BIT-IDENTICAL results to the
//    fault-free run whenever recovery succeeds, and the typed PeerFailure
//    otherwise. Never a silent wrong answer.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "clique/fault.hpp"
#include "clique/network.hpp"
#include "core/apsp.hpp"
#include "core/counting.hpp"
#include "core/engine.hpp"
#include "core/girth.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "util/contracts.hpp"

namespace cca {
namespace {

using clique::FaultKind;
using clique::FaultPlan;
using clique::FaultScope;
using clique::Network;
using clique::PeerFailure;
using clique::Router;
using clique::Word;
using core::MmKind;

// The fixed three-pair staging pattern most Network-level pins use:
// 0 -> 1 (3 words), 1 -> 2 (2 words), 2 -> 3 (5 words). Distinct links, so
// Router::Direct charges exactly the max per-pair wire volume.
std::vector<Word> stage_three_pairs(Network& net) {
  std::vector<Word> p01 = {11, 22, 33};
  std::vector<Word> p12 = {44, 55};
  std::vector<Word> p23 = {66, 77, 88, 99, 110};
  net.send_words(0, 1, p01);
  net.send_words(1, 2, p12);
  net.send_words(2, 3, p23);
  return p01;  // the frame the tests re-check after delivery
}

// ---------------------------------------------------------------------------
// Primitives: checksum, coins, plan validation.

TEST(FaultPrimitives, ChecksumDetectsBitFlipsAndMisrouting) {
  const std::vector<Word> payload = {1, 0xdeadbeefULL, ~Word{0}, 42, 0};
  const Word sum = clique::frame_checksum(2, 5, payload);
  EXPECT_EQ(sum, clique::frame_checksum(2, 5, payload));  // deterministic
  // splitmix64 is a bijection, so the absorb chain detects EVERY single-bit
  // flip; sample the bit positions to keep the test fast.
  for (std::size_t w = 0; w < payload.size(); ++w) {
    for (int b = 0; b < 64; b += 5) {
      auto flipped = payload;
      flipped[w] ^= Word{1} << b;
      EXPECT_NE(clique::frame_checksum(2, 5, flipped), sum)
          << "undetected flip at word " << w << " bit " << b;
    }
  }
  // The pair identity is absorbed: equal content on a different link fails.
  EXPECT_NE(clique::frame_checksum(5, 2, payload), sum);
  EXPECT_NE(clique::frame_checksum(2, 4, payload), sum);
}

TEST(FaultPrimitives, CoinsAreDeterministicAndIndependentlySalted) {
  const auto h = clique::fault_hash(7, 3, 1, 2, 9, FaultKind::Drop);
  EXPECT_EQ(h, clique::fault_hash(7, 3, 1, 2, 9, FaultKind::Drop));
  EXPECT_NE(h, clique::fault_hash(7, 3, 1, 2, 9, FaultKind::Corrupt));
  EXPECT_NE(h, clique::fault_hash(7, 4, 1, 2, 9, FaultKind::Drop));
  EXPECT_NE(h, clique::fault_hash(7, 3, 2, 2, 9, FaultKind::Drop));
  EXPECT_NE(h, clique::fault_hash(8, 3, 1, 2, 9, FaultKind::Drop));
  EXPECT_NE(h, clique::fault_hash(7, 3, 1, 9, 2, FaultKind::Drop));
  // Probability endpoints are exact under the 53-bit uniform mapping.
  EXPECT_FALSE(clique::fault_coin(h, 0.0));
  EXPECT_TRUE(clique::fault_coin(h, 1.0));
}

TEST(FaultPrimitives, InstallValidatesPlan) {
  Network net(4);
  FaultPlan bad;
  bad.drop_prob = 1.5;
  EXPECT_THROW(net.install_faults(bad), InvalidArgument);
  bad = FaultPlan{};
  bad.crash_node = 4;  // out of range for n = 4
  EXPECT_THROW(net.install_faults(bad), InvalidArgument);
  bad = FaultPlan{};
  bad.max_retransmit = 0;
  EXPECT_THROW(net.install_faults(bad), InvalidArgument);
  bad = FaultPlan{};
  bad.straggler_delay = -1;
  EXPECT_THROW(net.install_faults(bad), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Hardened superstep pins (Router::Direct, so rounds are hand-computable).

TEST(HardenedDeliver, NoPlanHasZeroFaultCost) {
  Network net(4);
  const auto sent = stage_three_pairs(net);
  net.deliver(Router::Direct);
  const auto& s = net.stats();
  // Fault-free accounting: no checksum trailers, no verify round.
  EXPECT_EQ(s.rounds, 5);  // max link load: the 5-word pair
  EXPECT_EQ(s.total_words, 10);
  EXPECT_EQ(s.supersteps, 1);
  EXPECT_EQ(s.faults_injected, 0);
  EXPECT_EQ(s.retransmit_rounds, 0);
  EXPECT_EQ(s.retransmit_words, 0);
  EXPECT_EQ(s.recovery_wall_ns, 0);
  const auto in = net.inbox(1, 0);
  EXPECT_EQ(std::vector<Word>(in.begin(), in.end()), sent);
}

TEST(HardenedDeliver, ChecksumOverheadPinnedUnderQuiescentPlan) {
  // A plan with all probabilities zero is NOT free: every nonempty
  // off-diagonal frame carries a checksum trailer word and the superstep
  // pays one verification round. This pin documents that boundary.
  Network net(4);
  FaultPlan plan;  // all probabilities zero, no crash
  net.install_faults(plan);
  const auto sent = stage_three_pairs(net);
  net.deliver(Router::Direct);
  const auto& s = net.stats();
  EXPECT_EQ(s.rounds, 7);       // max wire (5+1) + 1 verify round
  EXPECT_EQ(s.total_words, 13); // 10 payload + 3 trailers
  EXPECT_EQ(s.bound_rounds, 3); // ceil(6 / 3) + 1 verify
  EXPECT_EQ(s.supersteps, 1);
  EXPECT_EQ(s.max_node_send, 6);
  EXPECT_EQ(s.max_node_recv, 6);
  EXPECT_EQ(s.faults_injected, 0);
  EXPECT_EQ(s.retransmit_rounds, 0);
  EXPECT_EQ(s.retransmit_words, 0);
  EXPECT_EQ(net.fault_clock(), 1);
  // Verification passed, so receivers get the pristine staged bits.
  const auto in = net.inbox(1, 0);
  EXPECT_EQ(std::vector<Word>(in.begin(), in.end()), sent);
}

TEST(HardenedDeliver, DuplicateDeliveryChargedAndScheduleStaysValid) {
  // duplicate_prob = 1: every frame rides its links twice. The copy is
  // charged for real (doubled wire volume in the SAME schedule) and then
  // discarded by framing — inbox content is bit-identical to fault-free.
  Network net(4);
  FaultPlan plan;
  plan.duplicate_prob = 1.0;
  net.install_faults(plan);
  const auto sent = stage_three_pairs(net);
  net.deliver(Router::Direct);
  const auto& s = net.stats();
  EXPECT_EQ(s.rounds, 13);       // max wire 2*(5+1) + 1 verify
  EXPECT_EQ(s.total_words, 26);  // 2 * (10 payload + 3 trailers)
  EXPECT_EQ(s.faults_injected, 3);
  EXPECT_EQ(s.retransmit_rounds, 0);  // duplicates are not failures
  EXPECT_EQ(s.retransmit_words, 0);
  EXPECT_EQ(s.supersteps, 1);
  const auto in = net.inbox(1, 0);
  EXPECT_EQ(std::vector<Word>(in.begin(), in.end()), sent);
}

TEST(HardenedDeliver, StragglerDelaysRoundsOnly) {
  Network net(4);
  FaultPlan plan;
  plan.straggler_prob = 1.0;
  plan.straggler_delay = 3;
  net.install_faults(plan);
  stage_three_pairs(net);
  net.deliver(Router::Direct);
  const auto& s = net.stats();
  // One shared barrier delay regardless of how many nodes straggle, charged
  // to rounds only — slowness moves no words.
  EXPECT_EQ(s.rounds, 7 + 3);
  EXPECT_EQ(s.total_words, 13);
  EXPECT_EQ(s.faults_injected, 4);  // every node drew a straggle coin
  EXPECT_EQ(s.bound_rounds, 3);     // volume bound untouched by slowness
}

TEST(HardenedDeliver, RetransmitExhaustedIsChargedAndTyped) {
  // drop_prob = 1: attempt 0 and every retransmission fail, so after
  // max_retransmit = 2 extra attempts the superstep aborts with the typed
  // error — with every attempt charged for real first.
  Network net(4);
  FaultPlan plan;
  plan.drop_prob = 1.0;
  plan.max_retransmit = 2;
  net.install_faults(plan);
  stage_three_pairs(net);
  try {
    net.deliver(Router::Direct);
    FAIL() << "expected PeerFailure";
  } catch (const PeerFailure& pf) {
    EXPECT_EQ(pf.reason(), PeerFailure::Reason::RetransmitExhausted);
    EXPECT_EQ(pf.node(), -1);
    EXPECT_EQ(pf.fault_clock(), 0);
  }
  const auto& s = net.stats();
  // Attempt 0: direct 6 + 1 verify = 7. Attempts 1, 2: 6 + 1 NACK each.
  EXPECT_EQ(s.rounds, 7 + 7 + 7);
  EXPECT_EQ(s.retransmit_rounds, 14);
  EXPECT_EQ(s.total_words, 13 * 3);
  EXPECT_EQ(s.retransmit_words, 26);
  EXPECT_EQ(s.faults_injected, 9);  // 3 frames dropped on each of 3 attempts
  EXPECT_EQ(s.bound_rounds, 3 * 3);
  EXPECT_EQ(s.supersteps, 1);
  // The superstep aborted: staged state was discarded, nothing delivered.
  EXPECT_TRUE(net.inbox(1, 0).empty());
  net.clear_faults();
  net.deliver(Router::Direct);  // empty superstep: nothing left behind
  EXPECT_EQ(net.stats().total_words, 13 * 3);
}

TEST(HardenedDeliver, RetransmitChargesMatchTheCoinOracle) {
  // Replay the documented model through the PUBLIC fault_hash/fault_coin
  // oracle and require the hardened superstep to charge exactly what the
  // model predicts — the strongest pin that doesn't hard-code magic
  // totals. corrupt faults also exercise the checksum-detection path.
  FaultPlan plan;
  plan.seed = 2026;
  plan.corrupt_prob = 0.45;
  struct Pair {
    int src, dst;
    std::int64_t len;
  };
  const std::vector<Pair> pairs = {{0, 1, 3}, {1, 2, 2}, {2, 3, 5}};

  // Model replay (tick 0, Router::Direct, distinct links).
  std::int64_t exp_rounds = 0, exp_total = 0, exp_injected = 0;
  std::int64_t exp_rrounds = 0, exp_rwords = 0;
  std::vector<std::size_t> failed;
  std::int64_t max_wire = 0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto& p = pairs[i];
    const auto w = p.len + 1;
    max_wire = std::max(max_wire, w);
    exp_total += w;
    if (clique::fault_coin(clique::fault_hash(plan.seed, 0, 0, p.src, p.dst,
                                              FaultKind::Corrupt),
                           plan.corrupt_prob)) {
      ++exp_injected;
      failed.push_back(i);
    }
  }
  exp_rounds = max_wire + 1;  // schedule + verify round
  int attempts_used = 0;
  for (int attempt = 1; !failed.empty(); ++attempt) {
    ASSERT_LE(attempt, plan.max_retransmit) << "seed must recover in-budget";
    attempts_used = attempt;
    std::vector<std::size_t> still;
    std::int64_t rmax = 0, rtotal = 0;
    for (const auto i : failed) {
      const auto& p = pairs[i];
      const auto w = p.len + 1;
      rmax = std::max(rmax, w);
      rtotal += w;
      if (clique::fault_coin(clique::fault_hash(plan.seed, 0, attempt, p.src,
                                                p.dst, FaultKind::Corrupt),
                             plan.corrupt_prob)) {
        ++exp_injected;
        still.push_back(i);
      }
    }
    const auto r = rmax + 1;  // schedule + NACK round
    exp_rounds += r;
    exp_rrounds += r;
    exp_total += rtotal;
    exp_rwords += rtotal;
    failed = std::move(still);
  }
  ASSERT_GE(exp_injected, 1) << "seed 2026 must inject at least one fault";
  ASSERT_GE(attempts_used, 1) << "seed 2026 must retransmit at least once";

  Network net(4);
  net.install_faults(plan);
  std::vector<Word> payloads[3];
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    payloads[i].assign(static_cast<std::size_t>(pairs[i].len),
                       0xab00 + static_cast<Word>(i));
    net.send_words(pairs[i].src, pairs[i].dst, payloads[i]);
  }
  net.deliver(Router::Direct);
  const auto& s = net.stats();
  EXPECT_EQ(s.rounds, exp_rounds);
  EXPECT_EQ(s.total_words, exp_total);
  EXPECT_EQ(s.faults_injected, exp_injected);
  EXPECT_EQ(s.retransmit_rounds, exp_rrounds);
  EXPECT_EQ(s.retransmit_words, exp_rwords);
  EXPECT_GT(s.recovery_wall_ns, 0);
  // After retransmission every receiver still gets the pristine bits.
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const auto in = net.inbox(pairs[i].dst, pairs[i].src);
    EXPECT_EQ(std::vector<Word>(in.begin(), in.end()), payloads[i]);
  }
}

TEST(HardenedDeliver, CrashAbortsWithTypedErrorAndExactCharges) {
  Network net(4);
  FaultPlan plan;
  plan.crash_node = 1;
  plan.crash_superstep = 0;
  plan.crash_down_for = -1;
  net.install_faults(plan);
  stage_three_pairs(net);
  try {
    net.deliver(Router::Direct);
    FAIL() << "expected PeerFailure";
  } catch (const PeerFailure& pf) {
    EXPECT_EQ(pf.reason(), PeerFailure::Reason::Crash);
    EXPECT_EQ(pf.node(), 1);
    EXPECT_EQ(pf.fault_clock(), 0);
  }
  const auto& s = net.stats();
  // The dead node's own frame (1 -> 2) was never sent; the live senders'
  // frames (0 -> 1, 2 -> 3) travelled with trailers before the verify
  // round revealed the crash: wire 4 and 6 on distinct links.
  EXPECT_EQ(s.rounds, 6 + 1);
  EXPECT_EQ(s.total_words, 10);
  EXPECT_EQ(s.bound_rounds, 2 + 1);
  EXPECT_EQ(s.faults_injected, 1);
  EXPECT_EQ(s.supersteps, 1);
  EXPECT_TRUE(net.inbox(1, 0).empty());  // partial inboxes never exposed
}

TEST(HardenedDeliver, UninvolvedCrashLetsSurvivorsProceed) {
  Network net(5);
  FaultPlan plan;
  plan.crash_node = 4;  // stays silent: no staged frame touches it
  plan.crash_superstep = 0;
  net.install_faults(plan);
  const auto sent = stage_three_pairs(net);
  EXPECT_NO_THROW(net.deliver(Router::Direct));
  EXPECT_EQ(net.stats().faults_injected, 0);
  const auto in = net.inbox(1, 0);
  EXPECT_EQ(std::vector<Word>(in.begin(), in.end()), sent);
}

TEST(Liveness, VoteIsChargedAndTracksTheCrashWindow) {
  Network net(4);
  FaultPlan plan;
  plan.crash_node = 2;
  plan.crash_superstep = 1;
  plan.crash_down_for = 2;
  net.install_faults(plan);
  const auto expect_alive = [&](bool alive2) {
    const auto alive = net.liveness_vote();
    ASSERT_EQ(alive.size(), 4u);
    EXPECT_EQ(alive[2] != 0, alive2);
    EXPECT_EQ(alive[0], 1);
  };
  expect_alive(true);   // tick 0: before the window
  expect_alive(false);  // tick 1: down
  expect_alive(false);  // tick 2: down
  expect_alive(true);   // tick 3: back up
  EXPECT_EQ(net.fault_clock(), 4);
  EXPECT_EQ(net.stats().rounds, 4);  // one charged round per vote
}

// ---------------------------------------------------------------------------
// with_peer_recovery at the Network level.

TEST(Recovery, TransientCrashIsRetriedBitIdentical) {
  Network net(4);
  FaultPlan plan;
  plan.crash_node = 1;
  plan.crash_superstep = 0;
  plan.crash_down_for = 2;
  net.install_faults(plan);
  const std::vector<Word> payload = {5, 6, 7};
  int runs = 0;
  const auto got = clique::with_peer_recovery(net, [&] {
    ++runs;
    net.send_words(0, 1, payload);
    net.deliver(Router::Direct);
    return net.take_inbox(1, 0);
  });
  EXPECT_EQ(got, payload);
  EXPECT_EQ(runs, 2);  // tick 0 crashed; votes at ticks 1 (dead), 2 (alive)
  EXPECT_EQ(net.stats().faults_injected, 1);
  EXPECT_EQ(net.fault_clock(), 4);  // deliver, vote, vote, deliver
}

TEST(Recovery, PermanentCrashRethrowsAfterVoteBudget) {
  Network net(4);
  FaultPlan plan;
  plan.crash_node = 3;
  plan.crash_superstep = 0;
  plan.crash_down_for = -1;
  plan.max_recovery_waits = 5;
  net.install_faults(plan);
  int runs = 0;
  try {
    (void)clique::with_peer_recovery(net, [&]() -> int {
      ++runs;
      net.send(0, 3, 42);
      net.deliver(Router::Direct);
      return 0;
    });
    FAIL() << "expected PeerFailure";
  } catch (const PeerFailure& pf) {
    EXPECT_EQ(pf.reason(), PeerFailure::Reason::Crash);
    EXPECT_EQ(pf.node(), 3);
  }
  EXPECT_EQ(runs, 1);
  // 1 hardened deliver + 5 charged (failed) liveness votes.
  EXPECT_EQ(net.fault_clock(), 6);
}

// ---------------------------------------------------------------------------
// End-to-end chaos: algorithms under ambient fault plans (FaultScope).

FaultPlan chaos_mix(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.drop_prob = 0.06;
  plan.corrupt_prob = 0.06;
  plan.duplicate_prob = 0.03;
  plan.straggler_prob = 0.04;
  return plan;
}

TEST(FaultChaos, ApspBitIdenticalUnderSixteenSeededMixes) {
  const auto g = gnp_random_graph(12, 0.35, 99);
  const auto ref = core::apsp_semiring(g);
  std::int64_t faults = 0, rrounds = 0;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    FaultScope scope(chaos_mix(seed));
    const auto got = core::apsp_semiring(g);
    // Recovery succeeded (no crash in the plan), so the answer must be
    // BIT-identical — faults may slow the run, never change it.
    EXPECT_EQ(got.dist, ref.dist) << "seed " << seed;
    EXPECT_EQ(got.next_hop, ref.next_hop) << "seed " << seed;
    EXPECT_GE(got.traffic.rounds, ref.traffic.rounds);
    EXPECT_GE(got.traffic.total_words, ref.traffic.total_words);
    faults += got.traffic.faults_injected;
    rrounds += got.traffic.retransmit_rounds;
  }
  // The mixes must actually exercise the failure path.
  EXPECT_GT(faults, 0);
  EXPECT_GT(rrounds, 0);
}

TEST(FaultChaos, TriangleCountBitIdenticalUnderFaultMix) {
  const auto g = gnp_random_graph(14, 0.3, 7);
  const auto ref = core::count_triangles_cc(g);
  for (std::uint64_t seed = 100; seed < 104; ++seed) {
    FaultScope scope(chaos_mix(seed));
    const auto got = core::count_triangles_cc(g);
    EXPECT_EQ(got.count, ref.count) << "seed " << seed;
    EXPECT_GE(got.traffic.rounds, ref.traffic.rounds);
  }
}

TEST(FaultChaos, GirthBitIdenticalUnderFaultMix) {
  const auto g = planted_cycle_graph(12, 5, 0.0, 3);
  const auto ref = core::girth_undirected_cc(g, 17);
  for (std::uint64_t seed = 200; seed < 204; ++seed) {
    FaultScope scope(chaos_mix(seed));
    const auto got = core::girth_undirected_cc(g, 17);
    EXPECT_EQ(got.girth, ref.girth) << "seed " << seed;
  }
}

TEST(FaultChaos, ApspRecoversFromTransientCrashBitIdentical) {
  const auto g = gnp_random_graph(10, 0.4, 5);
  const auto ref = core::apsp_semiring(g);
  FaultPlan plan;
  plan.crash_node = 2;
  plan.crash_superstep = 2;
  plan.crash_down_for = 3;
  FaultScope scope(plan);
  const auto got = core::apsp_semiring(g);
  EXPECT_EQ(got.dist, ref.dist);
  EXPECT_EQ(got.next_hop, ref.next_hop);
  EXPECT_GE(got.traffic.faults_injected, 1);  // the crash was detected
  EXPECT_GT(got.traffic.rounds, ref.traffic.rounds);  // votes + re-runs
}

TEST(FaultChaos, PermanentCrashSurfacesTypedNeverWrong) {
  const auto g = gnp_random_graph(10, 0.4, 5);
  FaultPlan plan;
  plan.crash_node = 1;
  plan.crash_superstep = 2;
  plan.crash_down_for = -1;
  plan.max_recovery_waits = 8;  // keep the doomed waiting short
  {
    FaultScope scope(plan);
    EXPECT_THROW((void)core::apsp_semiring(g), PeerFailure);
  }
  {
    FaultScope scope(plan);
    EXPECT_THROW((void)core::count_triangles_cc(g), PeerFailure);
  }
}

// ---------------------------------------------------------------------------
// Contract satellites: configurable failure handler + typed input errors.

TEST(Contracts, ThrowModeConvertsContractViolations) {
  ASSERT_EQ(contract_failure_mode(), ContractFailureMode::Abort);
  set_contract_failure_mode(ContractFailureMode::Throw);
  struct Restore {
    ~Restore() { set_contract_failure_mode(ContractFailureMode::Abort); }
  } restore;
  EXPECT_EQ(contract_failure_mode(), ContractFailureMode::Throw);
  Network net(2);
  // charge_rounds(-1) violates a CCA_EXPECTS precondition: in service mode
  // that surfaces as the typed ContractViolation instead of abort().
  EXPECT_THROW(net.charge_rounds(-1), ContractViolation);
  try {
    net.charge_rounds(-1);
  } catch (const ContractViolation& cv) {
    EXPECT_NE(std::string(cv.what()).find("rounds >= 0"), std::string::npos);
  }
}

TEST(Contracts, InvalidInputThrowsTypedErrorsRegardlessOfMode) {
  // CCA_VALIDATE sites guard USER input and always throw InvalidArgument
  // (a std::invalid_argument), even in the default Abort contract mode.
  EXPECT_THROW(Graph::undirected(-1), InvalidArgument);
  auto g = Graph::undirected(4);
  EXPECT_THROW(g.add_edge(0, 4, 1), InvalidArgument);   // endpoint range
  EXPECT_THROW(g.add_edge(2, 2, 1), InvalidArgument);   // self-loop
  EXPECT_THROW(gnp_random_graph(5, 1.5, 1), InvalidArgument);
  EXPECT_THROW(random_sparse_graph(4, -1, 1), InvalidArgument);
  EXPECT_THROW(random_weighted_graph(4, 0.5, 3, 2, 1), InvalidArgument);
  EXPECT_THROW((void)core::apsp_bounded(g, -1), InvalidArgument);
  EXPECT_THROW((void)core::apsp_approx(g, 0.0), InvalidArgument);
  EXPECT_THROW(core::IntMmEngine(MmKind::Naive, 0), InvalidArgument);
  EXPECT_THROW(Network(0), InvalidArgument);
  // Engine dimension mismatches are input errors, not contract bugs.
  const core::IntMmEngine engine(MmKind::Naive, 4);
  Network net(4);
  const Matrix<std::int64_t> wrong(3, 3, 0);
  EXPECT_THROW((void)engine.multiply(net, wrong, wrong), InvalidArgument);
  // std::invalid_argument catch sites keep working (typed subclass).
  EXPECT_THROW(Graph::undirected(-1), std::invalid_argument);
}

}  // namespace
}  // namespace cca
