// Edge-case and failure-injection coverage across the public API:
// degenerate sizes, extreme parameters, disconnected and adversarial
// inputs, and the contracts that hold at the boundaries.
#include <gtest/gtest.h>

#include <cmath>

#include "clique/network.hpp"
#include "clique/primitives.hpp"
#include "core/apsp.hpp"
#include "core/counting.hpp"
#include "core/distance_product.hpp"
#include "core/engine.hpp"
#include "core/four_cycle.hpp"
#include "core/girth.hpp"
#include "core/mm.hpp"
#include "graph/generators.hpp"
#include "graph/reference.hpp"
#include "matrix/codec.hpp"
#include "matrix/ops.hpp"
#include "util/rng.hpp"

namespace cca::core {
namespace {

constexpr std::int64_t kInf = MinPlusSemiring::kInf;

// ---------------------------------------------------------------------------
// Degenerate clique sizes.
// ---------------------------------------------------------------------------

TEST(EdgeCases, SingleNodeCliqueEverywhere) {
  const auto g1 = Graph::undirected(1);
  EXPECT_EQ(count_triangles_cc(g1).count, 0);
  EXPECT_EQ(count_4cycles_cc(g1).count, 0);
  EXPECT_EQ(count_5cycles_cc(g1).count, 0);
  EXPECT_FALSE(detect_4cycle_const(g1).found);
  EXPECT_EQ(girth_undirected_cc(g1, 1).girth, kInf);
  EXPECT_EQ(apsp_semiring(g1).dist(0, 0), 0);
  EXPECT_EQ(apsp_seidel(g1).dist(0, 0), 0);
  EXPECT_EQ(apsp_approx(g1, 0.5).dist(0, 0), 0);
}

TEST(EdgeCases, TwoNodeGraphs) {
  auto g = Graph::undirected(2);
  g.add_edge(0, 1, 7);
  EXPECT_EQ(apsp_semiring(g).dist(0, 1), 7);
  EXPECT_EQ(apsp_small_diameter(g).dist(1, 0), 7);
  EXPECT_EQ(girth_undirected_cc(g, 1).girth, kInf);
  auto d = Graph::directed(2);
  d.add_edge(0, 1);
  d.add_edge(1, 0);
  EXPECT_EQ(girth_directed_cc(d).girth, 2);
}

TEST(EdgeCases, EmptyEdgeSets) {
  const auto g = Graph::undirected(16);
  EXPECT_EQ(count_triangles_cc(g).count, 0);
  EXPECT_FALSE(detect_4cycle_const(g).found);
  const auto apsp = apsp_semiring(g);
  for (int u = 0; u < 16; ++u)
    for (int v = 0; v < 16; ++v)
      EXPECT_EQ(apsp.dist(u, v), u == v ? 0 : kInf);
  EXPECT_EQ(girth_undirected_cc(g, 2).girth, kInf);
}

// ---------------------------------------------------------------------------
// Zero matrices and identity through the distributed engines.
// ---------------------------------------------------------------------------

TEST(EdgeCases, ZeroAndIdentityMatrices) {
  const int n = 27;
  const IntRing ring;
  const I64Codec codec;
  clique::Network net(n);
  const Matrix<std::int64_t> zero(n, n, 0);
  const auto id = identity(ring, n);
  EXPECT_EQ(mm_semiring_3d(net, ring, codec, zero, zero), zero);
  EXPECT_EQ(mm_semiring_3d(net, ring, codec, id, id), id);
  Rng rng(3);
  Matrix<std::int64_t> a(n, n, 0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) a(i, j) = rng.next_in(-5, 5);
  EXPECT_EQ(mm_semiring_3d(net, ring, codec, a, id), a);
  EXPECT_EQ(mm_semiring_3d(net, ring, codec, id, a), a);
}

TEST(EdgeCases, AllInfinityDistanceProduct) {
  const int n = 8;
  clique::Network net(n);
  const Matrix<std::int64_t> inf(n, n, kInf);
  const auto p = dp_semiring(net, inf, inf);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) EXPECT_GE(p(i, j), kInf);
  const auto [dist, wit] = dp_semiring_witness(net, inf, inf);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) EXPECT_EQ(wit(i, j), -1);
}

// ---------------------------------------------------------------------------
// Extreme parameters.
// ---------------------------------------------------------------------------

TEST(EdgeCases, ApproxWithHugeDelta) {
  // delta = 4: scaled entries collapse to a couple of values; the sandwich
  // bound must still hold.
  const auto g = random_weighted_graph(12, 0.4, 1, 100, 5);
  const auto got = apsp_approx(g, 4.0);
  const auto want = ref_apsp(g);
  const double ratio = std::pow(5.0, 4.0) + 1;  // (1+4)^{ceil(log2 11)}
  for (int u = 0; u < 12; ++u)
    for (int v = 0; v < 12; ++v) {
      if (want(u, v) >= kInf) continue;
      EXPECT_GE(got.dist(u, v), want(u, v));
      EXPECT_LE(static_cast<double>(got.dist(u, v)),
                static_cast<double>(want(u, v)) * ratio);
    }
}

TEST(EdgeCases, ApproxWithSmallDeltaIsNearlyExact) {
  const auto g = random_weighted_graph(10, 0.5, 1, 20, 6);
  const auto got = apsp_approx(g, 0.05);
  const auto want = ref_apsp(g);
  for (int u = 0; u < 10; ++u)
    for (int v = 0; v < 10; ++v) {
      if (want(u, v) >= kInf) continue;
      EXPECT_LE(static_cast<double>(got.dist(u, v)),
                1.25 * static_cast<double>(want(u, v)));
    }
}

TEST(EdgeCases, BoundedApspWithZeroBound) {
  // m_bound = 0: only 0-weight self-distances survive.
  const auto g = random_weighted_graph(9, 0.4, 1, 5, 7);
  const auto got = apsp_bounded(g, 0);
  for (int u = 0; u < 9; ++u)
    for (int v = 0; v < 9; ++v)
      EXPECT_EQ(got.dist(u, v), u == v ? 0 : kInf);
}

TEST(EdgeCases, RingEmbeddedZeroBound) {
  const int n = 4;
  const auto alg = tensor_power(strassen_algorithm(), 0);
  clique::Network net(n);
  Matrix<std::int64_t> a(n, n, kInf);
  for (int i = 0; i < n; ++i) a(i, i) = 0;
  const auto p = dp_ring_embedded(net, alg, a, a, 0);
  for (int i = 0; i < n; ++i) EXPECT_EQ(p(i, i), 0);
  EXPECT_EQ(p(0, 1), kInf);
}

// ---------------------------------------------------------------------------
// Structured adversarial graphs.
// ---------------------------------------------------------------------------

TEST(EdgeCases, StarGraphHasNoCycles) {
  auto star = Graph::undirected(40);
  for (int v = 1; v < 40; ++v) star.add_edge(0, v);
  EXPECT_FALSE(detect_4cycle_const(star).found);
  EXPECT_EQ(girth_undirected_cc(star, 3).girth, kInf);
  EXPECT_EQ(count_triangles_cc(star).count, 0);
  // Star distances: hub 1, leaf-leaf 2.
  const auto apsp = apsp_seidel(star);
  EXPECT_EQ(apsp.dist(0, 5), 1);
  EXPECT_EQ(apsp.dist(3, 7), 2);
}

TEST(EdgeCases, SeidelOnDiameterOneAndTwo) {
  // Complete graph: one recursion level (G == G^2).
  const auto k = complete_graph(16);
  EXPECT_EQ(apsp_seidel(k).dist, ref_bfs_apsp(k));
  // Long even/odd paths stress the parity reconstruction of Lemma 17.
  EXPECT_EQ(apsp_seidel(path_graph(17)).dist, ref_bfs_apsp(path_graph(17)));
  EXPECT_EQ(apsp_seidel(path_graph(18)).dist, ref_bfs_apsp(path_graph(18)));
}

TEST(EdgeCases, FourCycleDetectorAtThresholdSizes) {
  // n = 31 (fallback) and n = 32 (tiling path) must agree on the same
  // structure.
  for (const int n : {31, 32, 33}) {
    auto g = cycle_graph(n);
    EXPECT_FALSE(detect_4cycle_const(g).found) << n;
    // Add a chord creating a 4-cycle: 0-1-2-3 + 0-3.
    g.add_edge(0, 3);
    EXPECT_TRUE(detect_4cycle_const(g).found) << n;
  }
}

TEST(EdgeCases, GirthOnTwoTriangleComponents) {
  auto g = Graph::undirected(64);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(10, 11);
  g.add_edge(11, 12);
  g.add_edge(12, 10);
  EXPECT_EQ(girth_undirected_cc(g, 4).girth, 3);
  EXPECT_EQ(ref_girth(g), 3);
}

TEST(EdgeCases, ApspLargeWeightsNoOverflow) {
  auto g = Graph::directed(8);
  const std::int64_t big = std::int64_t{1} << 40;
  for (int v = 0; v + 1 < 8; ++v) g.add_edge(v, v + 1, big);
  const auto got = apsp_semiring(g);
  EXPECT_EQ(got.dist(0, 7), 7 * big);
  EXPECT_EQ(got.dist(7, 0), kInf);
}

// ---------------------------------------------------------------------------
// Primitives at the boundaries.
// ---------------------------------------------------------------------------

TEST(EdgeCases, DisseminateEmptyAndSingleton) {
  clique::Network net(5);
  std::vector<std::vector<clique::Word>> empty(5);
  EXPECT_TRUE(clique::disseminate(net, empty).empty());
  std::vector<std::vector<clique::Word>> one(5);
  one[3] = {42};
  const auto all = clique::disseminate(net, one);
  EXPECT_EQ(all, (std::vector<clique::Word>{42}));
}

TEST(EdgeCases, EngineCliqueSizesMonotone) {
  for (const auto kind :
       {MmKind::Fast, MmKind::Semiring3D, MmKind::Naive}) {
    int prev = 1;
    for (int n = 1; n <= 200; n += 13) {
      const IntMmEngine e(kind, n);
      EXPECT_GE(e.clique_n(), n);
      EXPECT_GE(e.clique_n(), prev - 130);  // loosely monotone in n
      prev = e.clique_n();
    }
  }
}

TEST(EdgeCases, PlanFastMmHugeDepthStillLegal) {
  // depth 4 forces m = 2401 products; the plan must inflate the clique.
  const auto p = plan_fast_mm(10, 4);
  EXPECT_GE(p.clique_n, p.m);
  EXPECT_EQ(isqrt(p.clique_n) % p.d, 0);
}

}  // namespace
}  // namespace cca::core
