// Tests for distributed girth computation (Theorem 15 / Corollary 16).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "core/girth.hpp"
#include "graph/generators.hpp"
#include "graph/reference.hpp"
#include "matrix/semiring.hpp"

namespace cca::core {
namespace {

constexpr std::int64_t kInf = MinPlusSemiring::kInf;

TEST(GirthUndirected, StructuredGraphs) {
  EXPECT_EQ(girth_undirected_cc(cycle_graph(9), 1).girth, 9);
  EXPECT_EQ(girth_undirected_cc(petersen_graph(), 2).girth, 5);
  EXPECT_EQ(girth_undirected_cc(complete_graph(8), 3).girth, 3);
  EXPECT_EQ(girth_undirected_cc(complete_bipartite(4, 4), 4).girth, 4);
  EXPECT_EQ(girth_undirected_cc(grid_graph(5, 5), 5).girth, 4);
}

TEST(GirthUndirected, AcyclicGraphsReportInfinity) {
  EXPECT_EQ(girth_undirected_cc(binary_tree(20), 1).girth, kInf);
  EXPECT_EQ(girth_undirected_cc(path_graph(12), 2).girth, kInf);
  EXPECT_EQ(girth_undirected_cc(Graph::undirected(5), 3).girth, kInf);
}

class GirthRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GirthRandomSweep, MatchesReference) {
  const auto seed = GetParam();
  const auto g = gnp_random_graph(40, 0.08, seed);
  const auto want = ref_girth(g);
  const auto got = girth_undirected_cc(g, seed * 3 + 1);
  EXPECT_EQ(got.girth, want);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GirthRandomSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(GirthUndirected, OddEllThresholdUsesExactMooreExponent) {
  // Theorem 15's dichotomy at l = ceil(2 + 2/rho) is stated at the uniform
  // threshold n^{1 + 2/l} + n. The seed computed the exponent as
  // 1 + 1/(l/2) with INTEGER division — n^{1 + 1/floor(l/2)}, which
  // coincides for even l but keeps a wider sparse side for odd l (the
  // Fast engine's l = 9: n^{1.25} instead of n^{1 + 2/9}). A graph with m
  // in (n^{1+2/9} + n, n^{1.25} + n] flips: the seed learned it outright,
  // the theorem-form threshold takes the dense detection path (answers
  // are identical either way — the cascade + fallback is exact — so this
  // pins the DISPATCH, which is what the theorem's round bound rests on).
  const int n = 40;
  auto g = random_sparse_graph(n, 133, 11);
  // Plant a triangle so the dense path resolves at k = 3 (exact counting).
  if (!g.has_arc(0, 1)) g.add_edge(0, 1);
  if (!g.has_arc(1, 2)) g.add_edge(1, 2);
  if (!g.has_arc(0, 2)) g.add_edge(0, 2);
  std::int64_t m = 0;
  for (int v = 0; v < n; ++v) m += g.out_degree(v);
  m /= 2;
  const double nn = static_cast<double>(n);
  ASSERT_GT(static_cast<double>(m), std::pow(nn, 1.0 + 2.0 / 9.0) + n)
      << "graph must sit above the exact Moore threshold";
  ASSERT_LE(static_cast<double>(m), std::pow(nn, 1.25) + n)
      << "and below the truncated one, or the case pins nothing";
  const auto r = girth_undirected_cc(g, 3, MmKind::Fast);
  EXPECT_EQ(r.girth, 3);
  EXPECT_FALSE(r.used_sparse_path) << "dichotomy must flip to dense for odd l";
  // Control: below the exact threshold the sparse learn-everything path
  // still applies.
  const auto sparse_g = random_sparse_graph(n, 110, 12);
  const auto sparse_r = girth_undirected_cc(sparse_g, 4, MmKind::Fast);
  EXPECT_EQ(sparse_r.girth, ref_girth(sparse_g));
  EXPECT_TRUE(sparse_r.used_sparse_path);
}

TEST(GirthUndirected, DenseGraphTakesDetectionPath) {
  // Dense: more than n^{1+2/l} + n edges forces the cycle detection
  // path; complete graphs have girth 3 found by exact counting.
  const auto g = complete_graph(64);
  const auto r = girth_undirected_cc(g, 7);
  EXPECT_EQ(r.girth, 3);
  EXPECT_FALSE(r.used_sparse_path);
}

TEST(GirthUndirected, SparseGraphLearnsCheaply) {
  const auto g = cycle_graph(128);
  const auto r = girth_undirected_cc(g, 8);
  EXPECT_EQ(r.girth, 128);
  EXPECT_TRUE(r.used_sparse_path);
  EXPECT_LE(r.traffic.rounds, 30);  // ~3m/n + constants at m = n
}

TEST(GirthUndirected, DenseGirthFourViaTheoremFourPath) {
  // Dense bipartite: girth 4, found by the exact O(1) detector after the
  // triangle count returns zero.
  const auto g = complete_bipartite(32, 32);
  const auto r = girth_undirected_cc(g, 9);
  EXPECT_EQ(r.girth, 4);
  EXPECT_FALSE(r.used_sparse_path);
}

TEST(GirthDirected, StructuredGraphs) {
  EXPECT_EQ(girth_directed_cc(cycle_graph(8, true)).girth, 8);
  EXPECT_EQ(girth_directed_cc(cycle_graph(2, true)).girth, 2);
  auto g = Graph::directed(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);  // 3-cycle
  g.add_edge(3, 4);
  EXPECT_EQ(girth_directed_cc(g).girth, 3);
}

TEST(GirthDirected, AcyclicReportsInfinity) {
  EXPECT_EQ(girth_directed_cc(random_weighted_dag(16, 0.3, 1, 5, 3)).girth,
            kInf);
  EXPECT_EQ(girth_directed_cc(path_graph(10, true)).girth, kInf);
}

class DirectedGirthSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DirectedGirthSweep, MatchesReference) {
  const auto seed = GetParam();
  const auto g = gnp_random_graph(30, 0.07, seed, /*directed=*/true);
  EXPECT_EQ(girth_directed_cc(g).girth, ref_girth(g)) << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectedGirthSweep,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18));

TEST(GirthDirected, LongCycleNeedsFullDoubling) {
  // A single long directed cycle exercises doubling + binary search depth.
  const auto g = cycle_graph(23, true);
  const auto r = girth_directed_cc(g);
  EXPECT_EQ(r.girth, 23);
}

TEST(GirthDirected, TwoCycleFoundImmediately) {
  auto g = gnp_random_graph(24, 0.05, 21, /*directed=*/true);
  g.add_edge(3, 7);
  g.add_edge(7, 3);
  EXPECT_EQ(girth_directed_cc(g).girth, 2);
}

TEST(GirthDirected, SemiringEngineAgrees) {
  const auto g = gnp_random_graph(25, 0.1, 31, /*directed=*/true);
  const auto fast = girth_directed_cc(g, MmKind::Fast);
  const auto semi = girth_directed_cc(g, MmKind::Semiring3D);
  EXPECT_EQ(fast.girth, semi.girth);
  EXPECT_EQ(fast.girth, ref_girth(g));
}

}  // namespace
}  // namespace cca::core
