// Tests for the congested clique network model and its routing schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "clique/network.hpp"
#include "clique/primitives.hpp"
#include "clique/routing.hpp"
#include "util/rng.hpp"

namespace cca::clique {
namespace {

std::vector<Word> to_vector(std::span<const Word> s) {
  return {s.begin(), s.end()};
}

TEST(Network, DeliversWordsInOrder) {
  Network net(4);
  net.send(0, 1, 10);
  net.send(0, 1, 11);
  net.send(2, 1, 99);
  net.deliver();
  EXPECT_EQ(to_vector(net.inbox(1, 0)), (std::vector<Word>{10, 11}));
  EXPECT_EQ(to_vector(net.inbox(1, 2)), (std::vector<Word>{99}));
  EXPECT_TRUE(net.inbox(1, 3).empty());
}

TEST(Network, SelfSendsAreFree) {
  Network net(3);
  net.send(1, 1, 7);
  net.deliver();
  EXPECT_EQ(net.stats().rounds, 0);
  EXPECT_EQ(to_vector(net.inbox(1, 1)), (std::vector<Word>{7}));
}

TEST(Network, SingleWordCostsOneRoundEverywhere) {
  for (const auto r : {Router::Direct, Router::HashRelay, Router::RandomRelay,
                       Router::KoenigRelay}) {
    Network net(8, r);
    net.send(0, 5, 1);
    net.deliver();
    // Relays pay at most 2 (scatter + forward); direct pays exactly 1.
    EXPECT_GE(net.stats().rounds, 1);
    EXPECT_LE(net.stats().rounds, 2);
  }
}

TEST(Network, InboxClearedBetweenSupersteps) {
  Network net(3);
  net.send(0, 1, 5);
  net.deliver();
  net.send(2, 1, 6);
  net.deliver();
  EXPECT_TRUE(net.inbox(1, 0).empty());
  EXPECT_EQ(to_vector(net.inbox(1, 2)), (std::vector<Word>{6}));
}

TEST(Network, StatsAccumulate) {
  Network net(4);
  net.send(0, 1, 1);
  net.deliver();
  const auto r1 = net.stats().rounds;
  net.send(0, 1, 1);
  net.deliver();
  EXPECT_GT(net.stats().rounds, r1 - 1);
  EXPECT_EQ(net.stats().supersteps, 2);
  EXPECT_EQ(net.stats().total_words, 2);
}

TEST(Network, ChargeRoundsAddsToStats) {
  Network net(2);
  net.charge_rounds(5);
  EXPECT_EQ(net.stats().rounds, 5);
}

TEST(Network, TakeInboxMovesWords) {
  Network net(2);
  net.send(0, 1, 3);
  net.deliver();
  auto words = net.take_inbox(1, 0);
  EXPECT_EQ(words, (std::vector<Word>{3}));
  EXPECT_TRUE(net.inbox(1, 0).empty());
}

// ---------------------------------------------------------------------------
// Schedule round counts.
// ---------------------------------------------------------------------------

TEST(Schedules, DirectIsMaxLinkLoad) {
  const int n = 6;
  std::vector<Demand> demands{{0, 1, 10}, {0, 2, 3}, {4, 1, 7}};
  EXPECT_EQ(rounds_direct(n, demands), 10);
}

TEST(Schedules, DirectAggregatesRepeatedLinks) {
  std::vector<Demand> demands{{0, 1, 4}, {0, 1, 5}};
  EXPECT_EQ(rounds_direct(4, demands), 9);
}

TEST(Schedules, EmptyDemandsCostNothing) {
  std::vector<Demand> none;
  Rng rng(1);
  EXPECT_EQ(rounds_direct(5, none), 0);
  EXPECT_EQ(rounds_hash_relay(5, none), 0);
  EXPECT_EQ(rounds_random_relay(5, none, rng), 0);
  EXPECT_EQ(rounds_koenig_relay(5, none), 0);
}

TEST(Schedules, RelayBeatsDirectOnSingleHeavyLink) {
  // One node ships n words to one receiver: direct needs n rounds, a relay
  // spreads over intermediates and needs ~2 + slack.
  const int n = 64;
  std::vector<Demand> demands{{0, 1, 64}};
  EXPECT_EQ(rounds_direct(n, demands), 64);
  EXPECT_LE(rounds_hash_relay(n, demands), 6);
  EXPECT_LE(rounds_koenig_relay(n, demands), 6);
}

TEST(Schedules, LenzenBalancedInstanceIsConstantRounds) {
  // Every node sends exactly n words spread over all receivers and receives
  // n words: the Lenzen routing regime. The Koenig relay is the executable
  // counterpart of the deterministic O(1) guarantee; the hashed/random
  // relays pay a small collision factor (Theta(log n / log log n) in the
  // worst case) but stay near-constant.
  const int n = 32;
  std::vector<Demand> demands;
  for (int s = 0; s < n; ++s)
    for (int d = 0; d < n; ++d)
      if (s != d) demands.push_back({s, d, 1});
  EXPECT_LE(rounds_koenig_relay(n, demands), 6);
  EXPECT_LE(rounds_hash_relay(n, demands), 16);
  Rng rng(3);
  EXPECT_LE(rounds_random_relay(n, demands, rng), 16);
}

TEST(Schedules, KoenigStaysConstantAsNGrows) {
  // The Lenzen O(1) bound must be flat in n for the balanced instance.
  for (const int n : {16, 32, 64, 128}) {
    std::vector<Demand> demands;
    for (int s = 0; s < n; ++s)
      for (int d = 0; d < n; ++d)
        if (s != d) demands.push_back({s, d, 1});
    EXPECT_LE(rounds_koenig_relay(n, demands), 6) << n;
  }
}

TEST(Schedules, KoenigNearOptimalOnSkewedInstance) {
  // Adversarial skew: node 0 sends n words to each of n/2 receivers.
  // Lower bound: out-degree load = n*n/2 words over n links = n/2 rounds.
  const int n = 32;
  std::vector<Demand> demands;
  for (int d = 1; d <= n / 2; ++d) demands.push_back({0, d, n});
  const auto lower = static_cast<std::int64_t>(n) * (n / 2) / n;
  const auto koenig = rounds_koenig_relay(n, demands);
  EXPECT_GE(koenig, lower);
  EXPECT_LE(koenig, 3 * lower + 4);
}

TEST(Schedules, KoenigWithinConstantOfLowerBoundRandomInstances) {
  Rng rng(99);
  const int n = 24;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Demand> demands;
    std::vector<std::int64_t> out(n, 0), in(n, 0);
    for (int i = 0; i < 100; ++i) {
      const int s = static_cast<int>(rng.next_below(n));
      int d = static_cast<int>(rng.next_below(n));
      if (s == d) d = (d + 1) % n;
      const auto words = rng.next_in(1, 40);
      demands.push_back({s, d, words});
      out[static_cast<std::size_t>(s)] += words;
      in[static_cast<std::size_t>(d)] += words;
    }
    std::int64_t lower = 0;
    for (int v = 0; v < n; ++v)
      lower = std::max({lower, (out[static_cast<std::size_t>(v)] + n - 1) / n,
                        (in[static_cast<std::size_t>(v)] + n - 1) / n});
    const auto koenig = rounds_koenig_relay(n, demands);
    EXPECT_GE(koenig, lower);
    EXPECT_LE(koenig, 6 * lower + 8) << "trial " << trial;
  }
}

TEST(Schedules, HashRelayDeterministic) {
  std::vector<Demand> demands{{0, 1, 17}, {2, 3, 9}, {1, 0, 30}};
  EXPECT_EQ(rounds_hash_relay(16, demands), rounds_hash_relay(16, demands));
}

// ---------------------------------------------------------------------------
// Schedule validity, serial/parallel bit-identity, and the greedy bound.
// ---------------------------------------------------------------------------

namespace {

std::vector<Demand> random_demands(Rng& rng, int n, int entries,
                                   std::int64_t max_words) {
  std::vector<Demand> demands;
  for (int i = 0; i < entries; ++i) {
    const int s = static_cast<int>(rng.next_below(n));
    int d = static_cast<int>(rng.next_below(n));
    if (s == d) d = (d + 1) % n;
    demands.push_back({s, d, rng.next_in(1, max_words)});
  }
  return demands;
}

/// Assert the colour classes form a legal relay plan: every class is a
/// partial matching on ports (no src and no dst appears twice within one
/// class — that is what lets the class cross the clique in O(1) relay
/// rounds), and the classes together deliver every demanded word exactly
/// once.
void expect_valid_colouring(
    int n, const std::vector<Demand>& demands,
    const std::vector<std::vector<std::pair<int, int>>>& classes,
    const char* what) {
  std::map<std::pair<int, int>, std::int64_t> delivered;
  for (std::size_t c = 0; c < classes.size(); ++c) {
    std::vector<int> src_used(static_cast<std::size_t>(n), 0);
    std::vector<int> dst_used(static_cast<std::size_t>(n), 0);
    for (const auto& [s, d] : classes[c]) {
      ASSERT_GE(s, 0);
      ASSERT_LT(s, n);
      ASSERT_GE(d, 0);
      ASSERT_LT(d, n);
      EXPECT_EQ(src_used[static_cast<std::size_t>(s)]++, 0)
          << what << ": src " << s << " twice in class " << c;
      EXPECT_EQ(dst_used[static_cast<std::size_t>(d)]++, 0)
          << what << ": dst " << d << " twice in class " << c;
      ++delivered[{s, d}];
    }
  }
  std::map<std::pair<int, int>, std::int64_t> wanted;
  for (const auto& dm : demands) wanted[{dm.src, dm.dst}] += dm.words;
  EXPECT_EQ(delivered, wanted) << what << ": words delivered != demanded";
}

}  // namespace

TEST(Schedules, ColourClassesAreValidForBothPolicies) {
  // The schedule-validity property: for random ragged instances, both the
  // Euler-split and the greedy first-fit colourings must produce classes
  // that are partial matchings covering the demand multiset exactly.
  Rng rng(123);
  const int n = 18;
  for (int trial = 0; trial < 8; ++trial) {
    const auto demands = random_demands(rng, n, 50, 12);
    expect_valid_colouring(n, demands, koenig_relay_classes(n, demands),
                           "koenig");
    expect_valid_colouring(n, demands, greedy_relay_classes(n, demands),
                           "greedy");
  }
}

TEST(Schedules, ParallelSplitIsBitIdenticalToSerial) {
  // The parallel Euler split must produce the SAME colour classes — not
  // just the same round count — for every task count, including task
  // counts far above the machine's worker count. This is the property that
  // lets a multi-core CI machine gate its BENCH_routing.json rows against
  // a single-core baseline.
  Rng rng(321);
  const int n = 20;
  for (int trial = 0; trial < 4; ++trial) {
    const auto demands = random_demands(rng, n, 80, 20);
    const auto serial = koenig_relay_classes(n, demands, 1);
    for (const int tasks : {2, 4, 8, 16}) {
      EXPECT_EQ(serial, koenig_relay_classes(n, demands, tasks))
          << "tasks=" << tasks << " trial=" << trial;
    }
    const auto s1 = schedule_koenig_relay(n, demands, 1);
    const auto s8 = schedule_koenig_relay(n, demands, 8);
    EXPECT_EQ(s1.rounds, s8.rounds);
    EXPECT_EQ(s1.classes, s8.classes);
    EXPECT_EQ(s1.words, s8.words);
  }
}

TEST(Schedules, GreedyClassesWithinFirstFitBound) {
  // First-fit gives each word the lowest level free at both endpoints, so
  // the class count is at most deg(src) + deg(dst) - 1 <= 2 * maxdeg - 1,
  // where maxdeg is the max number of WORDS at one port. The optimal
  // colouring needs >= maxdeg classes, so greedy is < 2x optimal — and the
  // Euler split needs >= maxdeg classes too, giving the testable relation
  // greedy.classes <= 2 * koenig.classes - 1.
  Rng rng(55);
  const int n = 16;
  for (int trial = 0; trial < 8; ++trial) {
    const auto demands = random_demands(rng, n, 40, 15);
    std::vector<std::int64_t> out(static_cast<std::size_t>(n), 0);
    std::vector<std::int64_t> in(static_cast<std::size_t>(n), 0);
    std::map<std::pair<int, int>, std::int64_t> merged;
    for (const auto& d : demands) merged[{d.src, d.dst}] += d.words;
    for (const auto& [pair, words] : merged) {
      out[static_cast<std::size_t>(pair.first)] += words;
      in[static_cast<std::size_t>(pair.second)] += words;
    }
    std::int64_t maxdeg = 0;
    for (int v = 0; v < n; ++v)
      maxdeg = std::max({maxdeg, out[static_cast<std::size_t>(v)],
                         in[static_cast<std::size_t>(v)]});
    const auto greedy = schedule_greedy_relay(n, demands);
    const auto koenig = schedule_koenig_relay(n, demands);
    EXPECT_LE(greedy.classes, 2 * maxdeg - 1) << "trial " << trial;
    EXPECT_LE(greedy.classes, 2 * koenig.classes - 1) << "trial " << trial;
    EXPECT_GE(greedy.classes, maxdeg) << "trial " << trial;
    EXPECT_EQ(greedy.words, koenig.words);
    // Rounds follow the class counts through the same intermediate
    // assignment, so the documented ~2x round bound has a small additive
    // slack from phase rounding.
    EXPECT_LE(greedy.rounds, 2 * koenig.rounds + 4) << "trial " << trial;
  }
}

TEST(Network, GreedyPolicyRoundsStayWithinTwiceExact) {
  // The opt-in Network knob end-to-end: the same staged traffic delivered
  // under each policy. Greedy's rounds are the exact cost of its looser
  // schedule — bounded by ~2x the exact policy's rounds, and the default
  // policy (what every round-pinned test runs) is ExactKoenig.
  Rng rng(77);
  const int n = 12;
  Network exact(n), greedy(n);
  EXPECT_EQ(exact.schedule_policy(), SchedulePolicy::ExactKoenig);
  greedy.set_schedule_policy(SchedulePolicy::Greedy);
  for (int step = 0; step < 3; ++step) {
    const auto demands = random_demands(rng, n, 30, 9);
    for (auto* net : {&exact, &greedy})
      for (const auto& d : demands)
        for (std::int64_t w = 0; w < d.words; ++w)
          net->send(d.src, d.dst, static_cast<Word>(w));
    exact.deliver();
    greedy.deliver();
    // Same content delivered regardless of schedule.
    for (int dst = 0; dst < n; ++dst)
      for (int src = 0; src < n; ++src)
        EXPECT_EQ(to_vector(exact.inbox(dst, src)),
                  to_vector(greedy.inbox(dst, src)));
  }
  EXPECT_LE(greedy.stats().rounds, 2 * exact.stats().rounds + 12);
  EXPECT_EQ(greedy.stats().total_words, exact.stats().total_words);
}

TEST(Network, PolicySwitchNeverReusesOtherPolicySchedule) {
  // Cache entries are policy-tagged: re-delivering the same shape after a
  // policy switch recomputes under the new policy (a miss), and switching
  // back hits the original entry again.
  Network net(10);
  auto superstep = [&] {
    for (int v = 0; v < 10; ++v) net.send(v, (v + 1) % 10, 5);
    net.deliver();
  };
  superstep();
  EXPECT_EQ(net.stats().schedule_misses, 1);
  net.set_schedule_policy(SchedulePolicy::Greedy);
  superstep();
  EXPECT_EQ(net.stats().schedule_misses, 2);  // no cross-policy hit
  net.set_schedule_policy(SchedulePolicy::ExactKoenig);
  superstep();
  EXPECT_EQ(net.stats().schedule_misses, 2);
  EXPECT_EQ(net.stats().schedule_hits, 1);
}

TEST(ScheduleCacheLru, EvictionNeverChangesRounds) {
  // Shrink the capacity so only one of our two shapes fits, thrash the
  // cache between them, and pin that every recompute of an evicted shape
  // reproduces the identical rounds (the deterministic-schedule guarantee
  // the LRU design leans on).
  Rng rng(31);
  const int n = 14;
  const auto a = random_demands(rng, n, 60, 10);
  const auto b = random_demands(rng, n, 60, 10);
  const auto rounds_a = schedule_koenig_relay(n, a).rounds;
  const auto rounds_b = schedule_koenig_relay(n, b).rounds;
  ScheduleCache cache;
  cache.set_capacity(std::max(a.size(), b.size()) + 10);  // fits one shape
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(cache.get(n, a).rounds, rounds_a);
    EXPECT_EQ(cache.get(n, b).rounds, rounds_b);
    EXPECT_LE(cache.entries(), 1u);
  }
  EXPECT_GT(cache.stats().evictions, 0);
  EXPECT_EQ(cache.stats().hits, 0);  // pure thrash: every get recomputed
}

TEST(ScheduleCacheLru, ReuseCountersTrackLiveEntries) {
  ScheduleCache cache;
  Rng rng(91);
  const int n = 10;
  const auto a = random_demands(rng, n, 20, 6);
  (void)cache.get(n, a);
  EXPECT_EQ(cache.total_reuse(), 0);
  (void)cache.get(n, a);
  (void)cache.get(n, a);
  EXPECT_EQ(cache.total_reuse(), 2);
  EXPECT_EQ(cache.max_entry_reuse(), 2);
}

TEST(Network, ScheduleWallTelemetryAccumulates) {
  // schedule_wall_ns is pure host telemetry: it must move when a Koenig
  // superstep or a prepare_schedule plan computes (or replays) a schedule,
  // and never affect the simulated rounds.
  Network net(16);
  EXPECT_EQ(net.stats().schedule_wall_ns, 0);
  for (int v = 0; v < 16; ++v)
    for (int u = 0; u < 16; ++u)
      if (u != v) net.send(v, u, 3);
  net.deliver();
  const auto after_deliver = net.stats().schedule_wall_ns;
  EXPECT_GT(after_deliver, 0);
  std::vector<Demand> plan{{0, 1, 40}, {2, 3, 17}, {5, 9, 4}};
  const auto planned = net.prepare_schedule(plan);
  EXPECT_GT(planned, 0);
  EXPECT_GT(net.stats().schedule_wall_ns, after_deliver);
}

// ---------------------------------------------------------------------------
// Reusable schedules and the demand-fingerprint cache.
// ---------------------------------------------------------------------------

TEST(Schedules, ScheduleObjectMatchesRoundsFunction) {
  Rng rng(7);
  const int n = 20;
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Demand> demands;
    for (int i = 0; i < 60; ++i) {
      const int s = static_cast<int>(rng.next_below(n));
      int d = static_cast<int>(rng.next_below(n));
      if (s == d) d = (d + 1) % n;
      demands.push_back({s, d, rng.next_in(1, 30)});
    }
    const auto sched = schedule_koenig_relay(n, demands);
    EXPECT_EQ(sched.rounds, rounds_koenig_relay(n, demands));
    EXPECT_GT(sched.classes, 0);
    std::int64_t words = 0;
    for (const auto& d : demands) words += d.words;
    EXPECT_EQ(sched.words, words);
  }
}

TEST(Schedules, FingerprintIsShapeSensitive) {
  const std::vector<Demand> a{{0, 1, 5}, {2, 3, 7}};
  const std::vector<Demand> same{{0, 1, 5}, {2, 3, 7}};
  const std::vector<Demand> words_differ{{0, 1, 5}, {2, 3, 8}};
  const std::vector<Demand> pair_differs{{0, 1, 5}, {2, 4, 7}};
  const std::vector<Demand> order_differs{{2, 3, 7}, {0, 1, 5}};
  EXPECT_EQ(demand_fingerprint(8, a), demand_fingerprint(8, same));
  EXPECT_NE(demand_fingerprint(8, a), demand_fingerprint(8, words_differ));
  EXPECT_NE(demand_fingerprint(8, a), demand_fingerprint(8, pair_differs));
  EXPECT_NE(demand_fingerprint(8, a), demand_fingerprint(8, order_differs));
  EXPECT_NE(demand_fingerprint(8, a), demand_fingerprint(9, a));
}

TEST(Schedules, CacheHitReturnsIdenticalSchedule) {
  ScheduleCache cache;
  Rng rng(9);
  const int n = 16;
  std::vector<Demand> demands;
  for (int i = 0; i < 40; ++i) {
    const int s = static_cast<int>(rng.next_below(n));
    int d = static_cast<int>(rng.next_below(n));
    if (s == d) d = (d + 1) % n;
    demands.push_back({s, d, rng.next_in(1, 20)});
  }
  const auto first = cache.get(n, demands);  // copy: get() may invalidate
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 0);
  const auto& second = cache.get(n, demands);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(second.rounds, first.rounds);
  EXPECT_EQ(second.classes, first.classes);
  EXPECT_EQ(second.words, first.words);
  EXPECT_EQ(second.rounds, rounds_koenig_relay(n, demands));
  // A different shape misses and computes its own schedule.
  auto other = demands;
  other[0].words += 1;
  (void)cache.get(n, other);
  EXPECT_EQ(cache.stats().misses, 2);
  EXPECT_EQ(cache.entries(), 2u);
  cache.clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.stats().misses, 0);
}

TEST(Network, ScheduleCacheCountersTrackRepeatedShapes) {
  Network net(9);
  auto superstep = [&] {
    for (int v = 0; v < 9; ++v)
      for (int u = 0; u < 9; ++u)
        if (u != v) net.send(v, u, 42);
    net.deliver();
  };
  superstep();
  EXPECT_EQ(net.stats().schedule_misses, 1);
  EXPECT_EQ(net.stats().schedule_hits, 0);
  const auto r1 = net.stats().rounds;
  superstep();
  superstep();
  EXPECT_EQ(net.stats().schedule_misses, 1);
  EXPECT_EQ(net.stats().schedule_hits, 2);
  // Replayed schedules charge bit-identical rounds.
  EXPECT_EQ(net.stats().rounds, 3 * r1);
  // A new shape misses again.
  net.send(0, 1, 7);
  net.deliver();
  EXPECT_EQ(net.stats().schedule_misses, 2);
}

TEST(Network, RandomRelayBypassesScheduleCache) {
  Network net(8, Router::RandomRelay);
  for (int i = 0; i < 3; ++i) {
    net.send(0, 5, 1);
    net.send(3, 2, 4);
    net.deliver();
  }
  EXPECT_EQ(net.stats().schedule_hits, 0);
  EXPECT_EQ(net.stats().schedule_misses, 0);
  EXPECT_EQ(net.schedule_cache().entries(), 0u);
}

TEST(Network, DirectRouterBypassesScheduleCache) {
  Network net(8, Router::Direct);
  net.send(0, 5, 1);
  net.deliver();
  EXPECT_EQ(net.stats().schedule_hits + net.stats().schedule_misses, 0);
}

// ---------------------------------------------------------------------------
// Staged-span / inbox-view generation counters (the silent-relocation
// hazard: under CCA_SANITIZE the buffers are force-relocated at every bump,
// so ASan faults any span held across these points).
// ---------------------------------------------------------------------------

TEST(Network, StageGenerationAdvancesPerSourceAndOnDeliver) {
  Network net(4);
  const auto g0 = net.stage_generation(0);
  const auto g1 = net.stage_generation(1);
  (void)net.stage(0, 1, 3);  // invalidates earlier spans from src 0 only
  EXPECT_EQ(net.stage_generation(0), g0 + 1);
  EXPECT_EQ(net.stage_generation(1), g1);
  net.send(0, 2, 9);
  EXPECT_EQ(net.stage_generation(0), g0 + 2);
  const auto gi = net.inbox_generation();
  net.deliver();  // invalidates every staged span and every inbox view
  EXPECT_EQ(net.stage_generation(0), g0 + 3);
  EXPECT_EQ(net.stage_generation(1), g1 + 1);
  EXPECT_EQ(net.inbox_generation(), gi + 1);
}

// ---------------------------------------------------------------------------
// Primitives.
// ---------------------------------------------------------------------------

TEST(Primitives, BroadcastAllCostsOneRound) {
  Network net(8);
  std::vector<Word> vals(8, 3);
  const auto got = broadcast_all(net, vals);
  EXPECT_EQ(got, vals);
  EXPECT_EQ(net.stats().rounds, 1);
}

TEST(Primitives, BroadcastAllSingletonFree) {
  Network net(1);
  (void)broadcast_all(net, {42});
  EXPECT_EQ(net.stats().rounds, 0);
}

TEST(Primitives, BroadcastFromCosts) {
  {
    Network net(10);
    broadcast_from(net, 0, 0);
    EXPECT_EQ(net.stats().rounds, 0);
  }
  {
    Network net(10);
    broadcast_from(net, 0, 1);
    EXPECT_EQ(net.stats().rounds, 1);
  }
  {
    Network net(10);
    broadcast_from(net, 0, 9);  // ceil(9/9) = 1 per phase
    EXPECT_EQ(net.stats().rounds, 2);
  }
  {
    Network net(10);
    broadcast_from(net, 0, 90);  // ceil(90/9) = 10 per phase
    EXPECT_EQ(net.stats().rounds, 20);
  }
  {
    // n == 2: the scatter already delivers everything to the only other
    // node — no rebroadcast phase to charge (the round-charge audit's
    // corrected drift; the seed implementation said 10).
    Network net(2);
    broadcast_from(net, 0, 5);
    EXPECT_EQ(net.stats().rounds, 5);
  }
}

TEST(Primitives, DisseminateReturnsUnionInOrder) {
  Network net(4);
  std::vector<std::vector<Word>> lists{{1, 2}, {}, {3}, {4, 5, 6}};
  const auto all = disseminate(net, lists);
  EXPECT_EQ(all, (std::vector<Word>{1, 2, 3, 4, 5, 6}));
  EXPECT_GE(net.stats().rounds, 2);  // at least counts + shares
}

TEST(Primitives, DisseminateScalesWithTotalOverN) {
  // W total words cost about 3W/n + O(1) rounds.
  const int n = 32;
  Network net(n);
  std::vector<std::vector<Word>> lists(n);
  const int per = 64;
  for (auto& l : lists) l.assign(per, 7);
  (void)disseminate(net, lists);
  const std::int64_t w = static_cast<std::int64_t>(n) * per;
  EXPECT_LE(net.stats().rounds, 4 * w / n + 10);
  EXPECT_GE(net.stats().rounds, w / n);
}

}  // namespace
}  // namespace cca::clique
