// Integration tests: distributed matrix multiplication (Sections 2.1/2.2)
// against local reference products, across semirings, sizes, and engines —
// plus socketpair'd P=2 runs pinning the ownership-generic engine layer
// (sharded Auto dispatch, batched APSP, and fault injection under the
// socket backend) bit-identical to the single-process arena oracle.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <cmath>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "clique/fault.hpp"
#include "clique/network.hpp"
#include "clique/socket_transport.hpp"
#include "clique/transport.hpp"
#include "core/apsp.hpp"
#include "core/engine.hpp"
#include "core/mm.hpp"
#include "graph/generators.hpp"
#include "matrix/codec.hpp"
#include "matrix/ops.hpp"
#include "matrix/semiring.hpp"
#include "matrix/strassen.hpp"
#include "util/rng.hpp"

namespace cca::core {
namespace {

Matrix<std::int64_t> random_int_matrix(int n, std::uint64_t seed,
                                       std::int64_t lo = -9,
                                       std::int64_t hi = 9) {
  Rng rng(seed);
  Matrix<std::int64_t> m(n, n, 0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) m(i, j) = rng.next_in(lo, hi);
  return m;
}

Matrix<std::int64_t> random_minplus_matrix(int n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<std::int64_t> m(n, n, MinPlusSemiring::kInf);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      if (rng.chance(3, 4)) m(i, j) = rng.next_in(0, 50);
  return m;
}

// ---------------------------------------------------------------------------
// Semiring 3D algorithm (Section 2.1).
// ---------------------------------------------------------------------------

class Semiring3dSizes : public ::testing::TestWithParam<int> {};

TEST_P(Semiring3dSizes, MatchesLocalIntegerProduct) {
  const int n = GetParam();
  clique::Network net(n);
  const IntRing ring;
  const I64Codec codec;
  const auto a = random_int_matrix(n, 100 + static_cast<std::uint64_t>(n));
  const auto b = random_int_matrix(n, 200 + static_cast<std::uint64_t>(n));
  const auto got = mm_semiring_3d(net, ring, codec, a, b);
  EXPECT_EQ(got, multiply(ring, a, b));
}

TEST_P(Semiring3dSizes, MatchesLocalMinPlusProduct) {
  const int n = GetParam();
  clique::Network net(n);
  const MinPlusSemiring sr;
  const I64Codec codec;
  const auto a = random_minplus_matrix(n, 300 + static_cast<std::uint64_t>(n));
  const auto b = random_minplus_matrix(n, 400 + static_cast<std::uint64_t>(n));
  const auto got = mm_semiring_3d(net, sr, codec, a, b);
  EXPECT_EQ(got, multiply(sr, a, b));
}

TEST_P(Semiring3dSizes, MatchesLocalBooleanProduct) {
  const int n = GetParam();
  clique::Network net(n);
  const BoolSemiring sr;
  const ByteCodec codec;
  Rng rng(500 + static_cast<std::uint64_t>(n));
  Matrix<std::uint8_t> a(n, n, 0);
  Matrix<std::uint8_t> b(n, n, 0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      a(i, j) = rng.chance(1, 3) ? 1 : 0;
      b(i, j) = rng.chance(1, 3) ? 1 : 0;
    }
  const auto got = mm_semiring_3d(net, sr, codec, a, b);
  EXPECT_EQ(got, multiply(sr, a, b));
}

INSTANTIATE_TEST_SUITE_P(PerfectCubes, Semiring3dSizes,
                         ::testing::Values(1, 8, 27, 64, 125, 216));

TEST(Semiring3d, RoundsGrowSubLinearly) {
  // Normalized rounds/n must decline as n grows (the schedule is
  // ~6 n^{1/3} with the Koenig relay) and stay far below the naive 2n.
  double prev_norm = 1e9;
  for (const int n : {27, 64, 125, 216}) {
    clique::Network net(n);
    const IntRing ring;
    const I64Codec codec;
    const auto a = random_int_matrix(n, 7);
    const auto b = random_int_matrix(n, 8);
    (void)mm_semiring_3d(net, ring, codec, a, b);
    const auto rounds = net.stats().rounds;
    EXPECT_LT(rounds, 2 * n);  // beats the naive broadcast algorithm
    const double norm = static_cast<double>(rounds) / n;
    EXPECT_LT(norm, prev_norm);
    prev_norm = norm;
  }
}

TEST(Semiring3d, ObliviousIdenticalRoundsAcrossInputs) {
  // The communication pattern must not depend on matrix values.
  const int n = 64;
  const IntRing ring;
  const I64Codec codec;
  std::int64_t rounds1 = 0;
  std::int64_t rounds2 = 0;
  {
    clique::Network net(n);
    (void)mm_semiring_3d(net, ring, codec, random_int_matrix(n, 1),
                         random_int_matrix(n, 2));
    rounds1 = net.stats().rounds;
  }
  {
    clique::Network net(n);
    (void)mm_semiring_3d(net, ring, codec, Matrix<std::int64_t>(n, n, 0),
                         Matrix<std::int64_t>(n, n, 0));
    rounds2 = net.stats().rounds;
  }
  EXPECT_EQ(rounds1, rounds2);
}

// ---------------------------------------------------------------------------
// Fast bilinear algorithm (Section 2.2).
// ---------------------------------------------------------------------------

struct FastCase {
  int n;      // problem size (pre-padding)
  int depth;  // Strassen tensor power
};

class FastMmCases : public ::testing::TestWithParam<FastCase> {};

TEST_P(FastMmCases, MatchesLocalProductAfterPadding) {
  const auto [n, depth] = GetParam();
  const auto plan = plan_fast_mm(n, depth);
  ASSERT_GE(plan.clique_n, n);
  ASSERT_EQ(plan.m, static_cast<int>(ipow(7, depth)));
  clique::Network net(plan.clique_n);
  const IntRing ring;
  const I64Codec codec;
  const auto alg = tensor_power(strassen_algorithm(), depth);
  const auto a0 = random_int_matrix(n, 42 + static_cast<std::uint64_t>(n));
  const auto b0 = random_int_matrix(n, 43 + static_cast<std::uint64_t>(n));
  const auto a = pad_matrix(a0, plan.clique_n, std::int64_t{0});
  const auto b = pad_matrix(b0, plan.clique_n, std::int64_t{0});
  const auto got = mm_fast_bilinear(net, ring, codec, alg, a, b);
  const auto want = multiply(ring, a, b);
  EXPECT_EQ(got, want);
  // The real corner matches the unpadded product.
  EXPECT_EQ(got.block(0, 0, n, n), multiply(ring, a0, b0));
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDepths, FastMmCases,
    ::testing::Values(FastCase{4, 0}, FastCase{9, 0}, FastCase{16, 1},
                      FastCase{25, 1}, FastCase{49, 1}, FastCase{36, 1},
                      FastCase{64, 2}, FastCase{49, 2}, FastCase{100, 2},
                      FastCase{121, 2}));

TEST(FastMm, WorksWithSchoolbookBilinearAlgorithm) {
  // Lemma 10 holds for ANY bilinear algorithm; check with <2,2,2;8>.
  const int n = 16;
  const auto alg = tensor_power(schoolbook_algorithm(2), 1);
  ASSERT_EQ(alg.m, 8);
  clique::Network net(n);
  const IntRing ring;
  const I64Codec codec;
  const auto a = random_int_matrix(n, 77);
  const auto b = random_int_matrix(n, 78);
  EXPECT_EQ(mm_fast_bilinear(net, ring, codec, alg, a, b),
            multiply(ring, a, b));
}

TEST(FastMm, TrivialAlgorithmDepthZero) {
  // depth 0 = the <1,1,1;1> algorithm: one "block product" of the whole
  // matrix hosted at node 0 — degenerate but legal.
  const int n = 9;
  const auto alg = tensor_power(strassen_algorithm(), 0);
  clique::Network net(n);
  const IntRing ring;
  const I64Codec codec;
  const auto a = random_int_matrix(n, 5);
  const auto b = random_int_matrix(n, 6);
  EXPECT_EQ(mm_fast_bilinear(net, ring, codec, alg, a, b),
            multiply(ring, a, b));
}

TEST(FastMm, ObliviousIdenticalRoundsAcrossInputs) {
  const auto plan = plan_fast_mm(49, 1);
  const IntRing ring;
  const I64Codec codec;
  const auto alg = tensor_power(strassen_algorithm(), 1);
  std::int64_t r1 = 0;
  std::int64_t r2 = 0;
  {
    clique::Network net(plan.clique_n);
    (void)mm_fast_bilinear(
        net, ring, codec, alg,
        pad_matrix(random_int_matrix(49, 1), plan.clique_n, std::int64_t{0}),
        pad_matrix(random_int_matrix(49, 2), plan.clique_n, std::int64_t{0}));
    r1 = net.stats().rounds;
  }
  {
    clique::Network net(plan.clique_n);
    const Matrix<std::int64_t> z(plan.clique_n, plan.clique_n, 0);
    (void)mm_fast_bilinear(net, ring, codec, alg, z, z);
    r2 = net.stats().rounds;
  }
  EXPECT_EQ(r1, r2);
}

TEST(FastMm, SublinearScalingAlongMatchedDepthFamily) {
  // Theorem 1's shape claim for the implemented sigma = log2 7: along the
  // family where the tensor depth grows with n (m(d) ~ n), normalized
  // rounds/n must decline sharply, and every size must beat the naive 2n.
  // (The ABSOLUTE crossover against the 3D algorithm needs n beyond
  // laptop-scale simulation for Strassen's sigma; the exponent ordering is
  // the reproducible claim — see EXPERIMENTS.md.)
  const IntRing ring;
  const I64Codec codec;
  double prev_norm = 1e9;
  const struct {
    int n;
    int depth;
  } cases[] = {{49, 2}, {576, 3}};
  for (const auto& c : cases) {
    const auto plan = plan_fast_mm(c.n, c.depth);
    clique::Network net(plan.clique_n);
    const auto alg = tensor_power(strassen_algorithm(), c.depth);
    const auto a = pad_matrix(random_int_matrix(c.n, 11, 0, 3), plan.clique_n,
                              std::int64_t{0});
    (void)mm_fast_bilinear(net, ring, codec, alg, a, a);
    const auto rounds = net.stats().rounds;
    EXPECT_LT(rounds, 2 * plan.clique_n);
    const double norm = static_cast<double>(rounds) / plan.clique_n;
    EXPECT_LT(norm, prev_norm);
    prev_norm = norm;
  }
}

TEST(FastMm, EngineRhoOrderingMatchesTable1) {
  // rho(fast) < rho(semiring) < rho(naive): the Table 1 ordering.
  const IntMmEngine fast(MmKind::Fast, 512, 3);
  const IntMmEngine semi(MmKind::Semiring3D, 512);
  const IntMmEngine naive(MmKind::Naive, 512);
  EXPECT_NEAR(fast.rho(), 1.0 - 2.0 / (std::log(7.0) / std::log(2.0)), 1e-9);
  EXPECT_LT(fast.rho(), semi.rho());
  EXPECT_LT(semi.rho(), naive.rho());
}

// ---------------------------------------------------------------------------
// Naive baseline and planning helpers.
// ---------------------------------------------------------------------------

TEST(NaiveMm, CorrectAndChargesTwoNRounds) {
  const int n = 32;
  clique::Network net(n);
  const IntRing ring;
  const auto a = random_int_matrix(n, 9);
  const auto b = random_int_matrix(n, 10);
  EXPECT_EQ(mm_naive_broadcast(net, ring, 1, a, b), multiply(ring, a, b));
  EXPECT_EQ(net.stats().rounds, 2 * n);
}

TEST(Plans, SemiringCliqueSizeIsNextCube) {
  EXPECT_EQ(semiring_clique_size(1), 1);
  EXPECT_EQ(semiring_clique_size(8), 8);
  EXPECT_EQ(semiring_clique_size(9), 27);
  EXPECT_EQ(semiring_clique_size(100), 125);
  EXPECT_EQ(semiring_clique_size(126), 216);
}

TEST(Plans, FastPlanRespectsConstraints) {
  for (const int n : {1, 5, 10, 50, 100, 343, 500, 1000})
    for (int depth = 0; depth <= 3; ++depth) {
      const auto p = plan_fast_mm(n, depth);
      EXPECT_GE(p.clique_n, n);
      EXPECT_GE(p.clique_n, p.m);
      EXPECT_TRUE(is_perfect_square(p.clique_n));
      EXPECT_EQ(isqrt(p.clique_n) % p.d, 0);
    }
}

TEST(Plans, AutoPlanPicksFittingDepth) {
  for (const int n : {1, 6, 7, 48, 49, 342, 343, 2400}) {
    const auto p = plan_fast_mm_auto(n);
    EXPECT_LE(p.m, std::max(p.clique_n, 1));
    EXPECT_GE(p.clique_n, n);
  }
}

// ---------------------------------------------------------------------------
// Two ranks in one process over a socketpair: the ownership-generic engine
// layer against the single-process arena oracle (cf. tools/cca_node.cpp,
// which runs the same checks across real processes).
// ---------------------------------------------------------------------------

/// Build the P=2 meshes from one socketpair (each side adopted by a rank).
std::pair<std::shared_ptr<clique::SocketMesh>,
          std::shared_ptr<clique::SocketMesh>>
paired_meshes() {
  int sv[2];
  EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  auto m0 = std::make_shared<clique::SocketMesh>(0, 2,
                                                 std::vector<int>{-1, sv[0]});
  auto m1 = std::make_shared<clique::SocketMesh>(1, 2,
                                                 std::vector<int>{sv[1], -1});
  return {std::move(m0), std::move(m1)};
}

/// Run one SPMD body per rank concurrently (deliver() blocks on the peer).
void run_ranks(const std::function<void(int)>& body) {
  std::thread t1([&] { body(1); });
  body(0);
  t1.join();
}

/// The deterministic TrafficStats fields (wall-clock telemetry excluded).
void expect_stats_eq(const clique::TrafficStats& got,
                     const clique::TrafficStats& want, int rank) {
  EXPECT_EQ(got.rounds, want.rounds) << "rank " << rank;
  EXPECT_EQ(got.bound_rounds, want.bound_rounds) << "rank " << rank;
  EXPECT_EQ(got.supersteps, want.supersteps) << "rank " << rank;
  EXPECT_EQ(got.total_words, want.total_words) << "rank " << rank;
  EXPECT_EQ(got.max_node_send, want.max_node_send) << "rank " << rank;
  EXPECT_EQ(got.max_node_recv, want.max_node_recv) << "rank " << rank;
  EXPECT_EQ(got.schedule_hits, want.schedule_hits) << "rank " << rank;
  EXPECT_EQ(got.schedule_misses, want.schedule_misses) << "rank " << rank;
  EXPECT_EQ(got.faults_injected, want.faults_injected) << "rank " << rank;
  EXPECT_EQ(got.retransmit_rounds, want.retransmit_rounds) << "rank " << rank;
  EXPECT_EQ(got.retransmit_words, want.retransmit_words) << "rank " << rank;
}

template <typename V>
void expect_owned_rows_eq(const Matrix<V>& got, const Matrix<V>& want,
                          clique::NodeSpan own, int rank) {
  for (int u = own.begin; u < std::min(own.end, got.rows()); ++u)
    for (int v = 0; v < got.cols(); ++v)
      ASSERT_EQ(got(u, v), want(u, v))
          << "rank " << rank << " entry (" << u << "," << v << ")";
}

TEST(SocketP2Engines, AutoBatchMatchesArenaOracleBitIdentically) {
  const int n = 8;
  const MinPlusSemiring sr;
  const I64Codec codec;
  std::vector<Matrix<std::int64_t>> as, bs;
  for (int b = 0; b < 3; ++b) {
    as.push_back(random_minplus_matrix(n, 600 + static_cast<std::uint64_t>(b)));
    bs.push_back(random_minplus_matrix(n, 700 + static_cast<std::uint64_t>(b)));
  }

  clique::Network oracle_net(n);
  MmDispatchContext oracle_ctx;
  const auto oracle = mm_semiring_auto_batch(
      oracle_net, sr, codec, std::span<const Matrix<std::int64_t>>(as),
      std::span<const Matrix<std::int64_t>>(bs), &oracle_ctx);

  auto [m0, m1] = paired_meshes();
  std::shared_ptr<clique::SocketMesh> meshes[2] = {m0, m1};
  run_ranks([&](int r) {
    clique::TransportScope scope(clique::SocketTransport::factory(meshes[r]));
    clique::Network net(n);
    MmDispatchContext ctx;
    const auto got = mm_semiring_auto_batch(
        net, sr, codec, std::span<const Matrix<std::int64_t>>(as),
        std::span<const Matrix<std::int64_t>>(bs), &ctx);
    ASSERT_EQ(got.size(), oracle.size());
    for (std::size_t b = 0; b < got.size(); ++b)
      expect_owned_rows_eq(got[b], oracle[b], net.owned(), r);
    EXPECT_EQ(ctx.trace, oracle_ctx.trace) << "rank " << r;
    expect_stats_eq(net.stats(), oracle_net.stats(), r);
  });
}

TEST(SocketP2Engines, ApspBatchMatchesArenaOracleBitIdentically) {
  const int n = 8;
  std::vector<Graph> gs;
  for (int b = 0; b < 3; ++b)
    gs.push_back(random_weighted_graph(n, 0.35, 1, 50,
                                       900 + static_cast<std::uint64_t>(b)));
  const auto oracle = apsp_semiring_batch(gs, MmKind::Auto);

  auto [m0, m1] = paired_meshes();
  std::shared_ptr<clique::SocketMesh> meshes[2] = {m0, m1};
  run_ranks([&](int r) {
    clique::TransportScope scope(clique::SocketTransport::factory(meshes[r]));
    const auto got = apsp_semiring_batch(gs, MmKind::Auto);
    const auto own = clique::shard_span(semiring_clique_size(n), 2, r);
    for (std::size_t b = 0; b < gs.size(); ++b)
      expect_owned_rows_eq(got.dist[b], oracle.dist[b], own, r);
    EXPECT_EQ(got.engine_trace, oracle.engine_trace) << "rank " << r;
    expect_stats_eq(got.traffic, oracle.traffic, r);
  });
}

TEST(SocketP2Engines, FaultMixChargesBitIdenticallyAcrossFourSeeds) {
  const int n = 8;
  const IntRing ring;
  const I64Codec codec;
  const auto a = random_int_matrix(n, 61);
  const auto b = random_int_matrix(n, 62);

  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    clique::FaultPlan plan;
    plan.seed = 0xfa11u ^ seed;
    plan.drop_prob = 0.05;
    plan.corrupt_prob = 0.05;
    plan.duplicate_prob = 0.02;

    clique::Network oracle_net(n);
    oracle_net.install_faults(plan);
    const auto oracle = mm_semiring_3d(oracle_net, ring, codec, a, b);
    ASSERT_GT(oracle_net.stats().faults_injected, 0)
        << "seed " << seed << " drew no faults — weaken the mix";

    auto [m0, m1] = paired_meshes();
    std::shared_ptr<clique::SocketMesh> meshes[2] = {m0, m1};
    run_ranks([&](int r) {
      clique::TransportScope scope(
          clique::SocketTransport::factory(meshes[r]));
      clique::Network net(n);
      net.install_faults(plan);
      const auto got = mm_semiring_3d(net, ring, codec, a, b);
      expect_owned_rows_eq(got, oracle, net.owned(), r);
      expect_stats_eq(net.stats(), oracle_net.stats(), r);
    });
  }
}

}  // namespace
}  // namespace cca::core
