// Tests for the APSP suite (Section 3.3): semiring squaring with routing
// tables, Seidel, bounded distances, diameter doubling, and approximation.
#include <gtest/gtest.h>

#include <cmath>

#include "core/apsp.hpp"
#include "graph/generators.hpp"
#include "graph/reference.hpp"
#include "matrix/semiring.hpp"

namespace cca::core {
namespace {

constexpr std::int64_t kInf = MinPlusSemiring::kInf;

/// Follow next_hop pointers from u to v; returns the traversed weight or
/// kInf on breakage. Validates that the routing table actually routes.
std::int64_t walk_route(const Graph& g, const Matrix<int>& next, int u,
                        int v) {
  if (u == v) return 0;
  std::int64_t total = 0;
  int cur = u;
  for (int hops = 0; hops <= g.n(); ++hops) {
    const int nxt = next(cur, v);
    if (nxt < 0 || !g.has_arc(cur, nxt)) return kInf;
    total += g.arc_weight(cur, nxt);
    cur = nxt;
    if (cur == v) return total;
  }
  return kInf;  // looped
}

struct ApspCase {
  int n;
  double p;
  bool directed;
  std::int64_t min_w;
  std::int64_t max_w;
  std::uint64_t seed;
};

class SemiringApspSweep : public ::testing::TestWithParam<ApspCase> {};

TEST_P(SemiringApspSweep, DistancesMatchFloydWarshall) {
  const auto c = GetParam();
  const auto g = random_weighted_graph(c.n, c.p, c.min_w, c.max_w, c.seed,
                                       c.directed);
  const auto got = apsp_semiring(g);
  EXPECT_EQ(got.dist, ref_apsp(g));
}

TEST_P(SemiringApspSweep, RoutingTablesRouteOptimally) {
  const auto c = GetParam();
  const auto g = random_weighted_graph(c.n, c.p, c.min_w, c.max_w, c.seed,
                                       c.directed);
  const auto got = apsp_semiring(g);
  for (int u = 0; u < c.n; ++u)
    for (int v = 0; v < c.n; ++v) {
      if (u == v) continue;
      if (got.dist(u, v) >= kInf) {
        EXPECT_EQ(got.next_hop(u, v), -1);
        continue;
      }
      EXPECT_EQ(walk_route(g, got.next_hop, u, v), got.dist(u, v))
          << u << "->" << v;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, SemiringApspSweep,
    ::testing::Values(ApspCase{10, 0.3, false, 1, 9, 1},
                      ApspCase{20, 0.2, false, 1, 50, 2},
                      ApspCase{27, 0.15, true, 1, 20, 3},
                      ApspCase{16, 0.3, true, 1, 5, 4},
                      ApspCase{24, 0.5, false, 1, 100, 5}));

TEST(ApspSemiring, NegativeWeightsOnDag) {
  const auto g = random_weighted_dag(14, 0.3, -5, 10, 7);
  const auto got = apsp_semiring(g);
  EXPECT_EQ(got.dist, ref_apsp(g));
}

TEST(ApspSemiring, NegativeWeightsThroughSparseAutoPath) {
  // Negative-weight regression for the nnz-adaptive path (the
  // broadcast_max_finite audit's companion): a SPARSE negative-weight DAG
  // forces the first squarings onto the sparse witness engine, whose codec
  // bit-casts entries — negative distances must survive the wire format,
  // and the routing tables must still route optimally.
  const auto g = random_weighted_dag(24, 0.08, -5, 10, 17);
  const auto got = apsp_semiring(g);
  EXPECT_EQ(got.dist, ref_apsp(g));
  ASSERT_FALSE(got.engine_trace.empty());
  EXPECT_EQ(got.engine_trace[0], AutoEngineChoice::Sparse);
  for (int u = 0; u < g.n(); ++u)
    for (int v = 0; v < g.n(); ++v) {
      if (u == v || got.dist(u, v) >= kInf) continue;
      EXPECT_EQ(walk_route(g, got.next_hop, u, v), got.dist(u, v))
          << u << "->" << v;
    }
  // Element-identical to the fixed dense path, witnesses included.
  const auto fixed = apsp_semiring(g, MmKind::Semiring3D);
  EXPECT_EQ(got.dist, fixed.dist);
  EXPECT_EQ(got.next_hop, fixed.next_hop);
}

TEST(ApspSemiring, SparseAutoBeats3dAt216WithIdenticalResults) {
  // The PR acceptance shape: n = 216 (a cube — no padding), nnz ~ 8n
  // finite off-diagonal entries (m = 4n undirected edges). The Auto path
  // must run STRICTLY fewer total rounds than the fixed Semiring3D path,
  // with element-identical distances and routing tables that route.
  const int n = 216;
  const auto g = random_sparse_graph(n, 4 * n, 33);
  const auto auto_r = apsp_semiring(g);
  const auto fixed_r = apsp_semiring(g, MmKind::Semiring3D);
  EXPECT_LT(auto_r.traffic.rounds, fixed_r.traffic.rounds);
  EXPECT_EQ(auto_r.dist, fixed_r.dist);
  EXPECT_EQ(auto_r.next_hop, fixed_r.next_hop);
  ASSERT_FALSE(auto_r.engine_trace.empty());
  EXPECT_EQ(auto_r.engine_trace[0], AutoEngineChoice::Sparse);
  // Routing tables must actually route (sampled: the full n^2 walk is the
  // per-pair sweep above at small n; here every 7th pair keeps it fast).
  for (int u = 0; u < n; u += 7)
    for (int v = 0; v < n; ++v) {
      if (u == v || auto_r.dist(u, v) >= kInf) continue;
      EXPECT_EQ(walk_route(g, auto_r.next_hop, u, v), auto_r.dist(u, v))
          << u << "->" << v;
    }
}

TEST(ApspSemiring, ConvergenceVoteExitsAfterFirstIdempotentSquaring) {
  // Unit-weight complete graph: the weight matrix is already the distance
  // matrix, so the FIRST squaring improves nothing and the convergence
  // vote must end the loop — the seed ran all squaring_iterations(n)
  // squarings on the idempotent iterate.
  const int n = 20;
  auto g = Graph::undirected(n);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v) g.add_edge(u, v, 1);
  const auto r = apsp_semiring(g);
  EXPECT_EQ(r.dist, ref_apsp(g));
  EXPECT_EQ(r.engine_trace.size(), 1u);  // one squaring, then the exit vote
  const auto fixed = apsp_semiring(g, MmKind::Semiring3D);
  EXPECT_EQ(fixed.dist, r.dist);
  EXPECT_EQ(fixed.traffic.supersteps, 2);  // the single squaring's 2 steps
}

TEST(ApspSemiring, DisconnectedPairsInfinity) {
  auto g = Graph::undirected(8);
  g.add_edge(0, 1, 3);
  g.add_edge(2, 3, 4);
  const auto got = apsp_semiring(g);
  EXPECT_EQ(got.dist(0, 1), 3);
  EXPECT_EQ(got.dist(0, 2), kInf);
  EXPECT_EQ(got.next_hop(0, 2), -1);
}

TEST(ApspSemiring, TrivialSizes) {
  EXPECT_EQ(apsp_semiring(Graph::undirected(1)).dist(0, 0), 0);
  auto g2 = Graph::undirected(2);
  g2.add_edge(0, 1, 9);
  const auto r = apsp_semiring(g2);
  EXPECT_EQ(r.dist(0, 1), 9);
  EXPECT_EQ(r.next_hop(0, 1), 1);
}

class SeidelSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeidelSweep, MatchesBfsDistances) {
  const auto seed = GetParam();
  const auto g = gnp_random_graph(26, 0.12, seed);
  const auto got = apsp_seidel(g);
  EXPECT_EQ(got.dist, ref_bfs_apsp(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeidelSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ApspSeidel, StructuredGraphs) {
  // Long path: recursion depth log(diameter).
  const auto path = path_graph(30);
  EXPECT_EQ(apsp_seidel(path).dist, ref_bfs_apsp(path));
  const auto ring = cycle_graph(24);
  EXPECT_EQ(apsp_seidel(ring).dist, ref_bfs_apsp(ring));
  // Disconnected graph: infinities across components.
  auto two = Graph::undirected(10);
  two.add_edge(0, 1);
  two.add_edge(5, 6);
  const auto got = apsp_seidel(two);
  EXPECT_EQ(got.dist(0, 1), 1);
  EXPECT_EQ(got.dist(1, 5), kInf);
}

TEST(ApspSeidel, SemiringEngineAgrees) {
  const auto g = gnp_random_graph(20, 0.15, 31);
  EXPECT_EQ(apsp_seidel(g, MmKind::Semiring3D).dist, ref_bfs_apsp(g));
}

TEST(ApspBounded, CutsOffAtM) {
  const auto g = path_graph(12);  // unit weights, distances 0..11
  const auto got = apsp_bounded(g, 4);
  const auto want = ref_apsp(g);
  for (int u = 0; u < 12; ++u)
    for (int v = 0; v < 12; ++v) {
      if (want(u, v) <= 4)
        EXPECT_EQ(got.dist(u, v), want(u, v)) << u << "," << v;
      else
        EXPECT_EQ(got.dist(u, v), kInf) << u << "," << v;
    }
}

class BoundedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundedSweep, ExactWithinBound) {
  const auto seed = GetParam();
  const auto g = random_weighted_graph(18, 0.25, 1, 4, seed);
  const std::int64_t m_bound = 12;
  const auto got = apsp_bounded(g, m_bound);
  const auto want = ref_apsp(g);
  for (int u = 0; u < 18; ++u)
    for (int v = 0; v < 18; ++v) {
      if (want(u, v) <= m_bound)
        EXPECT_EQ(got.dist(u, v), want(u, v));
      else
        EXPECT_GE(got.dist(u, v), kInf);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundedSweep, ::testing::Values(1, 2, 3, 4));

class SmallDiameterSweep : public ::testing::TestWithParam<ApspCase> {};

TEST_P(SmallDiameterSweep, ExactForAllReachablePairs) {
  const auto c = GetParam();
  const auto g = random_weighted_graph(c.n, c.p, c.min_w, c.max_w, c.seed,
                                       c.directed);
  const auto got = apsp_small_diameter(g);
  EXPECT_EQ(got.dist, ref_apsp(g));
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, SmallDiameterSweep,
    ::testing::Values(ApspCase{12, 0.4, false, 1, 3, 11},
                      ApspCase{16, 0.3, true, 1, 4, 12},
                      ApspCase{16, 0.25, false, 2, 6, 13}));

TEST(ApspSmallDiameter, RoundsGrowWithDiameter) {
  // Corollary 8: cost scales with the weighted diameter U.
  const auto small_u = random_weighted_graph(16, 0.5, 1, 2, 5);
  const auto large_u = random_weighted_graph(16, 0.5, 30, 40, 5);
  const auto r_small = apsp_small_diameter(small_u);
  const auto r_large = apsp_small_diameter(large_u);
  EXPECT_EQ(r_small.dist, ref_apsp(small_u));
  EXPECT_EQ(r_large.dist, ref_apsp(large_u));
  EXPECT_GT(r_large.traffic.rounds, 2 * r_small.traffic.rounds);
}

struct ApproxCase {
  int n;
  double p;
  std::int64_t max_w;
  double delta;
  std::uint64_t seed;
};

class ApproxSweep : public ::testing::TestWithParam<ApproxCase> {};

TEST_P(ApproxSweep, WithinGuaranteedRatio) {
  const auto c = GetParam();
  const auto g =
      random_weighted_graph(c.n, c.p, 1, c.max_w, c.seed, /*directed=*/true);
  const auto got = apsp_approx(g, c.delta);
  const auto want = ref_apsp(g);
  const int iters = static_cast<int>(
      std::ceil(std::log2(std::max(2.0, static_cast<double>(c.n) - 1))));
  const double ratio = std::pow(1.0 + c.delta, iters) + 1e-9;
  for (int u = 0; u < c.n; ++u)
    for (int v = 0; v < c.n; ++v) {
      if (want(u, v) >= kInf) {
        EXPECT_GE(got.dist(u, v), kInf);
        continue;
      }
      EXPECT_GE(got.dist(u, v), want(u, v)) << u << "," << v;
      EXPECT_LE(static_cast<double>(got.dist(u, v)),
                static_cast<double>(want(u, v)) * ratio + 1e-9)
          << u << "," << v;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ApproxSweep,
    ::testing::Values(ApproxCase{12, 0.3, 50, 0.2, 1},
                      ApproxCase{16, 0.25, 1000, 0.3, 2},
                      ApproxCase{16, 0.2, 100000, 0.5, 3},
                      ApproxCase{20, 0.3, 9, 0.1, 4}));

TEST(ApspApprox, ImplementedBoundHoldsOnAdversarialWeights) {
  // The contract is d <= dist <= (1+delta)^ceil(log2 n) d — NOT (1+delta),
  // and a fixed delta is NOT (1+o(1)): each squaring compounds a Lemma 20
  // factor. Adversarial instance: exponentially spread weights (3^i defeats
  // any alignment with the (1+delta)^i scaling grid) on a directed chain,
  // plus barely-longer shortcuts that tempt the scaled products into
  // swapping optimal paths, plus a tiny-weight back mesh mixing magnitudes
  // in one product.
  const int n = 14;
  auto g = Graph::directed(n);
  std::int64_t w = 1;
  for (int i = 0; i + 1 < n; ++i) {
    g.add_edge(i, i + 1, w);
    w *= 3;
  }
  std::int64_t acc = 1;
  for (int i = 0; i + 2 < n; ++i) {
    // shortcut barely longer than the two chain hops it replaces
    g.add_edge(i, i + 2, acc + 3 * acc + 1);
    acc *= 3;
  }
  for (int i = 2; i < n; ++i) g.add_edge(i, i % 2, 1);  // tiny back edges
  const auto want = ref_apsp(g);

  for (const double delta : {0.5, 0.25, 0.1}) {
    const auto got = apsp_approx(g, delta);
    const int iters = static_cast<int>(
        std::ceil(std::log2(std::max(2.0, static_cast<double>(n) - 1))));
    const double ratio = std::pow(1.0 + delta, iters) + 1e-9;
    for (int u = 0; u < n; ++u)
      for (int v = 0; v < n; ++v) {
        if (want(u, v) >= kInf) {
          EXPECT_GE(got.dist(u, v), kInf);
          continue;
        }
        EXPECT_GE(got.dist(u, v), want(u, v))
            << "delta=" << delta << " " << u << "," << v;
        EXPECT_LE(static_cast<double>(got.dist(u, v)),
                  static_cast<double>(want(u, v)) * ratio + 1e-9)
            << "delta=" << delta << " " << u << "," << v;
      }
  }
}

TEST(ApspApprox, AutoDeltaScheduleIsNearExact) {
  // apsp_approx_auto's delta(n) = 1/ceil(log2 n)^2 must keep the TOTAL
  // compounded error (1+delta)^ceil(log2 n) <= e^{1/log2 n} — for n = 16
  // that is at most e^{1/4} ~ 1.284, and it shrinks as n grows (the
  // (1+o(1)) schedule of Theorem 9).
  const int n = 16;
  const auto g = random_weighted_graph(n, 0.3, 1, 100000, 23,
                                       /*directed=*/true);
  const auto got = apsp_approx_auto(g);
  const auto want = ref_apsp(g);
  const double cap = std::exp(0.25) + 1e-9;
  for (int u = 0; u < n; ++u)
    for (int v = 0; v < n; ++v) {
      if (want(u, v) >= kInf) continue;
      EXPECT_GE(got.dist(u, v), want(u, v));
      EXPECT_LE(static_cast<double>(got.dist(u, v)),
                static_cast<double>(want(u, v)) * cap)
          << u << "," << v;
    }
}

TEST(ApspApprox, LargeWeightsCheaperThanExactEmbedding) {
  // The whole point of Theorem 9: with big weights, approximation is far
  // cheaper than the exact Lemma 19 embedding whose cost scales with M.
  const auto g = random_weighted_graph(16, 0.4, 500, 1000, 9);
  const auto approx = apsp_approx(g, 0.25);
  const auto exact = apsp_small_diameter(g);
  EXPECT_LT(approx.traffic.rounds, exact.traffic.rounds / 4);
}

TEST(ApspApprox, UnweightedGraphStillSane) {
  const auto g = gnp_random_graph(16, 0.3, 17);
  const auto got = apsp_approx(g, 0.3);
  const auto want = ref_bfs_apsp(g);
  for (int u = 0; u < 16; ++u)
    for (int v = 0; v < 16; ++v)
      if (want(u, v) < kInf) {
        EXPECT_GE(got.dist(u, v), want(u, v));
      }
}

}  // namespace
}  // namespace cca::core
