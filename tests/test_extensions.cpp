// Tests for the extension features beyond the paper's headline results:
// 5-cycle counting (the k in {5,6,7} remark after Corollary 2), witness-
// based routing tables for arbitrary APSP variants, bit-packed Boolean
// transport (the "/ log n" factors), witnesses over the fast product, and
// the broadcast congested clique (Corollary 24).
#include <gtest/gtest.h>

#include "clique/broadcast.hpp"
#include "clique/network.hpp"
#include "core/apsp.hpp"
#include "core/counting.hpp"
#include "core/distance_product.hpp"
#include "core/mm.hpp"
#include "core/witness.hpp"
#include "graph/generators.hpp"
#include "graph/reference.hpp"
#include "matrix/codec.hpp"
#include "matrix/ops.hpp"
#include "util/rng.hpp"

namespace cca::core {
namespace {

constexpr std::int64_t kInf = MinPlusSemiring::kInf;

// ---------------------------------------------------------------------------
// 5-cycle counting.
// ---------------------------------------------------------------------------

TEST(FiveCycles, StructuredGraphs) {
  EXPECT_EQ(count_5cycles_cc(cycle_graph(5)).count, 1);
  EXPECT_EQ(count_5cycles_cc(cycle_graph(6)).count, 0);
  EXPECT_EQ(count_5cycles_cc(complete_graph(5)).count, 12);   // 5!/(5*2)
  EXPECT_EQ(count_5cycles_cc(petersen_graph()).count, 12);    // classic
  EXPECT_EQ(count_5cycles_cc(complete_bipartite(4, 4)).count, 0);
  EXPECT_EQ(count_5cycles_cc(binary_tree(14)).count, 0);
  EXPECT_EQ(count_5cycles_cc(grid_graph(4, 4)).count, 0);
}

class FiveCycleSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FiveCycleSweep, MatchesReferenceOnRandomGraphs) {
  const auto seed = GetParam();
  const auto g = gnp_random_graph(18, 0.3, seed);
  EXPECT_EQ(count_5cycles_cc(g).count, ref_count_5cycles(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FiveCycleSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(FiveCycles, EnginesAgree) {
  const auto g = gnp_random_graph(20, 0.25, 9);
  const auto want = ref_count_5cycles(g);
  EXPECT_EQ(count_5cycles_cc(g, MmKind::Fast).count, want);
  EXPECT_EQ(count_5cycles_cc(g, MmKind::Semiring3D).count, want);
  EXPECT_EQ(count_5cycles_cc(g, MmKind::Naive).count, want);
}

TEST(FiveCycles, ReferenceCrossCheckAgainstEigenvalueInstances) {
  // K6: #C5 = C(6,5) * 12 = 72 (each 5-subset is a K5 with 12 cycles).
  EXPECT_EQ(ref_count_5cycles(complete_graph(6)), 72);
  EXPECT_EQ(count_5cycles_cc(complete_graph(6)).count, 72);
}

// ---------------------------------------------------------------------------
// Routing tables from arbitrary distance matrices.
// ---------------------------------------------------------------------------

std::int64_t walk_route(const Graph& g, const Matrix<int>& next, int u,
                        int v) {
  if (u == v) return 0;
  std::int64_t total = 0;
  int cur = u;
  for (int hops = 0; hops <= g.n(); ++hops) {
    const int nxt = next(cur, v);
    if (nxt < 0 || !g.has_arc(cur, nxt)) return kInf;
    total += g.arc_weight(cur, nxt);
    cur = nxt;
    if (cur == v) return total;
  }
  return kInf;
}

TEST(RoutingFromDistances, SeidelDistancesYieldOptimalRoutes) {
  const auto g = gnp_random_graph(22, 0.15, 4);
  const auto apsp = apsp_seidel(g);  // distances only
  clique::TrafficStats traffic;
  const auto next = routing_table_from_distances(g, apsp.dist, &traffic);
  EXPECT_GT(traffic.rounds, 0);
  for (int u = 0; u < g.n(); ++u)
    for (int v = 0; v < g.n(); ++v) {
      if (u == v) continue;
      if (apsp.dist(u, v) >= kInf) {
        EXPECT_EQ(next(u, v), -1);
        continue;
      }
      EXPECT_EQ(walk_route(g, next, u, v), apsp.dist(u, v)) << u << "," << v;
    }
}

TEST(RoutingFromDistances, WorksForWeightedDiameterVariant) {
  const auto g = random_weighted_graph(16, 0.35, 1, 5, 8, /*directed=*/true);
  const auto apsp = apsp_small_diameter(g);  // fast path, no witnesses
  const auto next = routing_table_from_distances(g, apsp.dist, nullptr);
  for (int u = 0; u < g.n(); ++u)
    for (int v = 0; v < g.n(); ++v) {
      if (u == v || apsp.dist(u, v) >= kInf) continue;
      EXPECT_EQ(walk_route(g, next, u, v), apsp.dist(u, v)) << u << "," << v;
    }
}

// ---------------------------------------------------------------------------
// Bit-packed Boolean transport.
// ---------------------------------------------------------------------------

TEST(PackedBoolean, SameProductFarFewerRounds) {
  const int n = 216;
  Rng rng(5);
  Matrix<std::uint8_t> a(n, n, 0);
  Matrix<std::uint8_t> b(n, n, 0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      a(i, j) = rng.chance(1, 3) ? 1 : 0;
      b(i, j) = rng.chance(1, 3) ? 1 : 0;
    }
  const BoolSemiring sr;

  std::int64_t unpacked_rounds = 0;
  Matrix<std::uint8_t> unpacked;
  {
    clique::Network net(n);
    unpacked = mm_semiring_3d(net, sr, ByteCodec{}, a, b);
    unpacked_rounds = net.stats().rounds;
  }
  std::int64_t packed_rounds = 0;
  Matrix<std::uint8_t> packed;
  {
    clique::Network net(n);
    packed = mm_semiring_3d(net, sr, PackedBoolCodec{}, a, b);
    packed_rounds = net.stats().rounds;
  }
  EXPECT_EQ(packed, unpacked);
  EXPECT_EQ(packed, multiply(sr, a, b));
  // 64 entries per word: block sizes here are 36 entries -> 1 word, so the
  // saving is ~36x; assert at least 10x.
  EXPECT_LT(10 * packed_rounds, unpacked_rounds);
}

TEST(PackedBoolean, WorksInFastBilinearToo) {
  // Boolean OR-AND is not a ring, but 0/1 integer matrices over Z with a
  // packed-bit STEP-1/7 codec would change values; instead check packing
  // on the semiring path at another size and keep the ring path unpacked.
  const int n = 27;
  Rng rng(6);
  Matrix<std::uint8_t> a(n, n, 0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) a(i, j) = rng.chance(1, 2) ? 1 : 0;
  const BoolSemiring sr;
  clique::Network net1(n);
  clique::Network net2(n);
  EXPECT_EQ(mm_semiring_3d(net1, sr, PackedBoolCodec{}, a, a),
            mm_semiring_3d(net2, sr, ByteCodec{}, a, a));
  EXPECT_LE(net1.stats().rounds, net2.stats().rounds);
}

// ---------------------------------------------------------------------------
// Witnesses over the fast (ring-embedded) oracle — Lemma 21 end-to-end.
// ---------------------------------------------------------------------------

TEST(WitnessOverFastOracle, FindsValidWitnesses) {
  const int n = 16;
  const std::int64_t m_bound = 20;
  const auto plan = plan_fast_mm(n, 1);
  ASSERT_EQ(plan.clique_n, n);
  const auto alg = tensor_power(strassen_algorithm(), 1);
  clique::Network net(n);

  Rng rng(7);
  Matrix<std::int64_t> s(n, n, kInf), t(n, n, kInf);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      if (!rng.chance(1, 4)) s(i, j) = rng.next_in(0, m_bound);
      if (!rng.chance(1, 4)) t(i, j) = rng.next_in(0, m_bound);
    }

  const DpOracle oracle = [&](const Matrix<std::int64_t>& x,
                              const Matrix<std::int64_t>& y) {
    // Restricted inputs keep entries within {0..M} u {inf}; the product is
    // bounded by 2M, which the embedding reports exactly.
    return dp_ring_embedded(net, alg, x, y, m_bound);
  };
  const auto p = oracle(s, t);
  const MinPlusSemiring sr;
  ASSERT_EQ(p, multiply(sr, s, t));

  const auto w = dp_witnesses(net, s, t, p, oracle, 99, 4);
  for (int u = 0; u < n; ++u)
    for (int v = 0; v < n; ++v) {
      if (p(u, v) >= kInf) continue;
      ASSERT_GE(w(u, v), 0) << u << "," << v;
      EXPECT_EQ(s(u, w(u, v)) + t(w(u, v), v), p(u, v));
    }
}

// ---------------------------------------------------------------------------
// Broadcast congested clique (Corollary 24).
// ---------------------------------------------------------------------------

TEST(BroadcastClique, DeliverChargesMaxQueue) {
  clique::BroadcastNetwork net(4);
  net.broadcast(0, 1);
  net.broadcast(0, 2);
  net.broadcast(3, 7);
  net.deliver();
  EXPECT_EQ(net.rounds(), 2);
  EXPECT_EQ(net.heard_from(0).size(), 2u);
  EXPECT_EQ(net.heard_from(3).size(), 1u);
  EXPECT_TRUE(net.heard_from(1).empty());
}

TEST(BroadcastClique, MmIsLinearWhileUnicastIsSublinear) {
  for (const int n : {27, 64, 125}) {
    EXPECT_EQ(clique::broadcast_mm_rounds(n), 2 * n);
    clique::Network net(n);
    const IntRing ring;
    const I64Codec codec;
    Matrix<std::int64_t> a(n, n, 1);
    (void)mm_semiring_3d(net, ring, codec, a, a);
    EXPECT_LT(net.stats().rounds, 2 * n);  // unicast beats broadcast
  }
}

}  // namespace
}  // namespace cca::core
