// Tests for colour-coding k-cycle detection (Lemma 11 / Theorem 3).
#include <gtest/gtest.h>

#include "core/color_coding.hpp"
#include "core/mm.hpp"
#include "graph/generators.hpp"
#include "graph/reference.hpp"

namespace cca::core {
namespace {

struct KCase {
  int n;
  int k;
  double noise;
  std::uint64_t seed;
};

class PlantedSweep : public ::testing::TestWithParam<KCase> {};

TEST_P(PlantedSweep, FindsPlantedCycle) {
  const auto c = GetParam();
  const auto g = planted_cycle_graph(c.n, c.k, c.noise, c.seed);
  ASSERT_TRUE(ref_has_k_cycle(g, c.k));
  const auto r = detect_k_cycle_cc(g, c.k, /*seed=*/c.seed * 7 + 1);
  EXPECT_TRUE(r.found);
  EXPECT_GE(r.trials, 1);
}

INSTANTIATE_TEST_SUITE_P(Cases, PlantedSweep,
                         ::testing::Values(KCase{16, 3, 0.0, 1},
                                           KCase{16, 4, 0.0, 2},
                                           KCase{20, 5, 0.05, 3},
                                           KCase{20, 6, 0.0, 4},
                                           KCase{24, 5, 0.1, 5}));

TEST(ColorCoding, NoFalsePositivesOnAcyclicGraphs) {
  const auto tree = binary_tree(20);
  for (const int k : {3, 4, 5}) {
    const auto r = detect_k_cycle_cc(tree, k, 99, /*max_trials=*/10);
    EXPECT_FALSE(r.found) << k;
  }
}

TEST(ColorCoding, NoOddCyclesInBipartite) {
  const auto g = random_bipartite_graph(10, 0.5, 7);
  EXPECT_FALSE(detect_k_cycle_cc(g, 3, 1, 20).found);
  EXPECT_FALSE(detect_k_cycle_cc(g, 5, 2, 20).found);
  // 4-cycles almost surely exist at this density.
  ASSERT_TRUE(ref_has_k_cycle(g, 4));
  EXPECT_TRUE(detect_k_cycle_cc(g, 4, 3).found);
}

TEST(ColorCoding, ExactLengthNotJustAnyCycle) {
  // A lone 5-cycle has no 3-, 4- or 6-cycles.
  const auto g = cycle_graph(5);
  EXPECT_FALSE(detect_k_cycle_cc(g, 3, 1, 30).found);
  EXPECT_FALSE(detect_k_cycle_cc(g, 4, 2, 30).found);
  EXPECT_TRUE(detect_k_cycle_cc(g, 5, 3).found);
}

TEST(ColorCoding, DirectedCycleOrientation) {
  const auto ring = cycle_graph(6, /*directed=*/true);
  EXPECT_TRUE(detect_k_cycle_cc(ring, 6, 1).found);
  EXPECT_FALSE(detect_k_cycle_cc(ring, 3, 2, 20).found);
  // Directed 2-cycle.
  auto two = Graph::directed(6);
  two.add_edge(0, 1);
  two.add_edge(1, 0);
  EXPECT_TRUE(detect_k_cycle_cc(two, 2, 3).found);
}

TEST(ColorCoding, ColourfulDetectionWithHandPickedColouring) {
  // Lemma 11 directly: colour the planted cycle with distinct colours.
  const int n = 12;
  const int k = 4;
  auto g = Graph::undirected(n);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(3, 0);
  const IntMmEngine engine(MmKind::Fast, n);
  clique::Network net(engine.clique_n());
  const auto a = pad_matrix(g.adjacency(), engine.clique_n(), std::int64_t{0});
  std::vector<int> colour(n, 0);
  colour[0] = 0;
  colour[1] = 1;
  colour[2] = 2;
  colour[3] = 3;
  EXPECT_TRUE(detect_colourful_cycle(net, engine, a, g, colour, k));
  // A colouring that repeats a colour on the cycle cannot certify it.
  colour[3] = 1;
  // Other nodes keep colour 0, so no colourful 4-cycle exists at all.
  EXPECT_FALSE(detect_colourful_cycle(net, engine, a, g, colour, k));
}

TEST(ColorCoding, KLargerThanNImmediatelyFalse) {
  const auto g = complete_graph(5);
  const auto r = detect_k_cycle_cc(g, 7, 1);
  EXPECT_FALSE(r.found);
  EXPECT_EQ(r.trials, 0);
}

TEST(ColorCoding, SemiringEngineAgrees) {
  const auto g = planted_cycle_graph(18, 5, 0.05, 11);
  const bool want = ref_has_k_cycle(g, 5);
  const auto r =
      detect_k_cycle_cc(g, 5, 13, /*max_trials=*/-1, MmKind::Semiring3D);
  EXPECT_EQ(r.found, want);
}

}  // namespace
}  // namespace cca::core
